"""Zone-lifecycle property harness + zone-management cost model tests.

Covers the PR's tentpole surface end to end:

* hypothesis properties over arbitrary open/append/close/finish/reset
  interleavings: the open/active budgets are never exceeded, appends
  only ever land on open zones, and illegal transitions raise *typed*
  errors (mirrors ``test_prop_flash.py``);
* the :class:`~repro.flash.zone.ZoneCostConfig` cost model: zero-cost
  defaults add no pipeline traffic (goldens stay bit-identical), the
  measured preset charges every command through the pipeline, and the
  ``zns_*`` bench columns reconcile exactly with the tracer's
  OPEN/CLOSE/FINISH/RESET span attribution;
* the ``max_open_zones`` contention model: forced closes evict the
  least-recently-written open zone and are themselves charged/traced;
* Z-Cache determinism: the seeded TinyLFU sketch routes the same key
  stream to the same zone groups on every run, closed-loop and serving
  rows survive a double-run CSV diff, and the gc-qos golden rows are
  byte-identical to the pre-cost-model baseline when every cost is 0.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.bench.reporting import rows_to_csv
from repro.bench.schemes import SchemeScale, build_scheme
from repro.errors import ZoneResourceError, ZoneStateError
from repro.flash import NandGeometry, ZnsConfig, ZnsSsd
from repro.flash.zone import (
    ACTIVE_STATES,
    OPEN_STATES,
    ZoneCostConfig,
    ZoneState,
)
from repro.sim import SimClock
from repro.sim.io import IoTracer
from repro.units import KIB
from repro.workloads.cachebench import CacheBenchConfig, CacheBenchDriver

PAGE = 4 * KIB

SMALL_GEO = NandGeometry(page_size=PAGE, pages_per_block=8, num_blocks=32)


def make_zns(
    costs: ZoneCostConfig = ZoneCostConfig(),
    max_open: int = 3,
    max_active: int = 5,
    tracer=None,
) -> ZnsSsd:
    return ZnsSsd(
        SimClock(),
        ZnsConfig(
            geometry=SMALL_GEO,
            zone_size=4 * SMALL_GEO.block_size,
            max_open_zones=max_open,
            max_active_zones=max_active,
            zone_costs=costs,
        ),
        tracer=tracer,
    )


LIFECYCLE_OPS = st.lists(
    st.tuples(
        st.sampled_from(["open", "append", "close", "finish", "reset"]),
        st.integers(0, 7),
    ),
    max_size=150,
)


# --- property harness -------------------------------------------------------------


class TestLifecycleProperties:
    """Arbitrary command interleavings against the zone state machine."""

    @settings(
        max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(ops=LIFECYCLE_OPS, forced=st.booleans())
    def test_budgets_and_states_hold_under_any_interleaving(self, ops, forced):
        zns = make_zns(ZoneCostConfig(forced_close=forced))
        payload = b"\xa5" * PAGE
        for op, zone_idx in ops:
            zone_idx %= zns.num_zones
            try:
                if op == "open":
                    zns.open_zone(zone_idx)
                elif op == "append":
                    zns.append(zone_idx, payload)
                elif op == "close":
                    zns.close_zone(zone_idx)
                elif op == "finish":
                    zns.finish_zone(zone_idx)
                else:
                    zns.reset_zone(zone_idx)
            except (ZoneStateError, ZoneResourceError):
                # The typed rejections the lifecycle is allowed to issue;
                # anything else escaping here fails the property.
                pass
            assert zns.open_zone_count <= zns.config.max_open_zones
            assert zns.active_zone_count <= zns.config.max_active_zones
            # is_active and the ACTIVE_STATES tuple must agree.
            assert zns.active_zone_count == sum(
                zone.state in ACTIVE_STATES for zone in zns.zones
            )
            for zone in zns.zones:
                assert zone.start <= zone.write_pointer <= zone.end
                assert zone.state in {
                    ZoneState.EMPTY,
                    ZoneState.IMPLICIT_OPEN,
                    ZoneState.EXPLICIT_OPEN,
                    ZoneState.CLOSED,
                    ZoneState.FULL,
                }
        # Host does all cleaning: WA stays exactly 1 whatever we issued.
        assert zns.stats.media_write_bytes == zns.stats.host_write_bytes

    @settings(
        max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(ops=LIFECYCLE_OPS)
    def test_appends_only_land_on_open_zones(self, ops):
        zns = make_zns()
        payload = b"\x5a" * PAGE
        for op, zone_idx in ops:
            zone_idx %= zns.num_zones
            zone = zns.zones[zone_idx]
            if op == "append":
                was_appendable = (
                    zone.state in OPEN_STATES
                    or zone.state in (ZoneState.EMPTY, ZoneState.CLOSED)
                )
                try:
                    zns.append(zone_idx, payload)
                except ZoneResourceError:
                    continue
                except ZoneStateError:
                    # Appending must only be refused when the zone was
                    # not (and could not become) open.
                    assert not was_appendable
                    continue
                # A successful append implies the zone passed through an
                # open state; it is still open unless this append filled it.
                assert zone.state in OPEN_STATES or zone.state == ZoneState.FULL
            else:
                try:
                    if op == "open":
                        zns.open_zone(zone_idx)
                    elif op == "close":
                        zns.close_zone(zone_idx)
                    elif op == "finish":
                        zns.finish_zone(zone_idx)
                    else:
                        zns.reset_zone(zone_idx)
                except (ZoneStateError, ZoneResourceError):
                    pass

    @settings(
        max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(targets=st.lists(st.integers(0, 7), max_size=80))
    def test_forced_close_keeps_open_budget_without_refusing_writes(self, targets):
        """With the contention model on, implicit opens never see
        ZoneResourceError for the *open* cap — the device pays a forced
        close instead — and the cap holds after every command."""
        zns = make_zns(
            ZoneCostConfig(forced_close=True), max_open=2, max_active=8
        )
        payload = b"\x11" * PAGE
        for zone_idx in targets:
            zone_idx %= zns.num_zones
            try:
                zns.append(zone_idx, payload)
            except ZoneStateError:
                continue  # zone already FULL
            assert zns.open_zone_count <= 2
        mgmt = zns.zone_mgmt
        assert mgmt.implicit_opens >= mgmt.forced_closes
        # Forced closes are distinct from explicit ones in the counters.
        assert mgmt.closes == 0

    def test_illegal_transitions_raise_typed_errors(self):
        zns = make_zns()
        zns.append(0, b"\x22" * PAGE)
        zns.finish_zone(0)
        with pytest.raises(ZoneStateError):
            zns.append(0, b"\x22" * PAGE)  # FULL rejects appends
        with pytest.raises(ZoneStateError):
            zns.open_zone(0)  # FULL rejects opens
        with pytest.raises(ZoneStateError):
            zns.close_zone(1)  # EMPTY (never opened) rejects close
        zns.reset_zone(0)
        assert zns.zones[0].state == ZoneState.EMPTY


# --- cost model -------------------------------------------------------------------


class TestZoneCostModel:
    def test_zero_cost_implicit_open_adds_no_pipeline_traffic(self):
        """The all-zero default must be invisible to timing: an implicit
        open submits no request (goldens stay bit-identical), only the
        transition counter moves."""
        tracer = IoTracer()
        zns = make_zns(tracer=tracer)
        tracer.enable()
        zns.append(0, b"\x33" * PAGE)
        assert zns.zone_mgmt.implicit_opens == 1
        assert zns.zone_mgmt.open_ns == 0
        ops = [record.op for record in tracer.records]
        assert "open" not in ops
        assert "append" in ops

    def test_measured_costs_charge_every_command_family(self):
        costs = ZoneCostConfig.measured()
        zns = make_zns(costs)
        overhead = zns.config.timing.command_overhead_ns
        zns.open_zone(0)
        assert zns.zone_mgmt.explicit_opens == 1
        assert zns.zone_mgmt.open_ns == overhead + costs.open_ns
        zns.append(0, b"\x44" * PAGE)
        zns.close_zone(0)
        assert zns.zone_mgmt.closes == 1
        assert zns.zone_mgmt.close_ns == overhead + costs.close_ns
        zns.finish_zone(0)
        assert zns.zone_mgmt.finishes == 1
        assert zns.zone_mgmt.finish_ns == overhead + costs.finish_ns
        before = zns._clock.now
        zns.reset_zone(0)
        assert zns.zone_mgmt.resets == 1
        assert zns.zone_mgmt.reset_ns == overhead + costs.reset_ns
        # Reset is a foreground command: the clock paid for it.
        assert zns._clock.now - before >= costs.reset_ns

    def test_implicit_open_with_cost_is_charged_once(self):
        costs = ZoneCostConfig(open_ns=5_000)
        zns = make_zns(costs)
        overhead_free = zns.zone_mgmt.open_ns
        assert overhead_free == 0
        zns.append(0, b"\x55" * PAGE)
        assert zns.zone_mgmt.implicit_opens == 1
        assert zns.zone_mgmt.open_ns == costs.open_ns
        # Staying in the same open zone charges nothing further.
        zns.append(0, b"\x55" * PAGE)
        assert zns.zone_mgmt.implicit_opens == 1
        assert zns.zone_mgmt.open_ns == costs.open_ns

    def test_forced_close_evicts_least_recently_written_zone(self):
        zns = make_zns(
            ZoneCostConfig(close_ns=7_000, forced_close=True),
            max_open=2,
            max_active=8,
        )
        payload = b"\x66" * PAGE
        zns.append(0, payload)
        zns.append(1, payload)
        zns.append(0, payload)  # zone 1 is now the LRU open zone
        zns.append(2, payload)
        assert zns.zones[1].state == ZoneState.CLOSED
        assert zns.zones[0].is_open and zns.zones[2].is_open
        mgmt = zns.zone_mgmt
        assert mgmt.forced_closes == 1
        assert mgmt.closes == 0
        overhead = zns.config.timing.command_overhead_ns
        assert mgmt.close_ns == overhead + 7_000
        # The victim stays active: closing frees the open slot only.
        assert zns.zones[1].is_active

    def test_open_cap_without_forced_close_still_raises(self):
        zns = make_zns(max_open=2, max_active=8)
        zns.append(0, b"\x77" * PAGE)
        zns.append(1, b"\x77" * PAGE)
        with pytest.raises(ZoneResourceError):
            zns.append(2, b"\x77" * PAGE)

    def test_active_cap_raises_even_with_forced_close(self):
        zns = make_zns(
            ZoneCostConfig(forced_close=True), max_open=2, max_active=2
        )
        zns.append(0, b"\x88" * PAGE)
        zns.append(1, b"\x88" * PAGE)
        # A forced close keeps the victim active, so the active budget
        # still has no room — the contention model only trades open slots.
        with pytest.raises(ZoneResourceError):
            zns.append(2, b"\x88" * PAGE)

    def test_zns_columns_reconcile_with_tracer_attribution(self):
        """Acceptance: the ``zns_*`` bench columns equal the tracer's
        per-op service-time sums, command for command."""
        from repro.bench.experiments import _zone_mgmt_columns

        costs = ZoneCostConfig(
            open_ns=3_000,
            close_ns=2_000,
            finish_ns=9_000,
            reset_ns=6_000,
            forced_close=True,
        )
        tracer = IoTracer()
        zns = make_zns(costs, max_open=2, max_active=8, tracer=tracer)
        tracer.enable()
        payload = b"\x99" * PAGE
        zns.append(0, payload)  # implicit open (charged: open_ns > 0)
        zns.append(1, payload)
        zns.append(2, payload)  # forced close of zone 0
        zns.open_zone(3)  # explicit open (forced close of zone 1)
        zns.close_zone(3)  # explicit close
        zns.finish_zone(2)
        zns.reset_zone(2)
        by_op = {}
        for record in tracer.records:
            if record.layer == "zns":
                by_op[record.op] = by_op.get(record.op, 0) + record.service_ns
        mgmt = zns.zone_mgmt
        assert mgmt.open_ns == by_op["open"]
        assert mgmt.close_ns == by_op["close"]
        assert mgmt.finish_ns == by_op["finish"]
        assert mgmt.reset_ns == by_op["reset"]
        cols = _zone_mgmt_columns([zns])
        assert cols["zns_open_us"] == mgmt.open_ns / 1000
        assert cols["zns_close_us"] == mgmt.close_ns / 1000
        assert cols["zns_finish_us"] == mgmt.finish_ns / 1000
        assert cols["zns_reset_us"] == mgmt.reset_ns / 1000
        assert cols["zns_forced_close"] == mgmt.forced_closes == 2
        assert mgmt.total_ns == sum(
            by_op[op] for op in ("open", "close", "finish", "reset")
        )

    def test_zone_mgmt_columns_zero_for_conventional_devices(self):
        from repro.bench.experiments import _zone_mgmt_columns

        cols = _zone_mgmt_columns([object()])
        assert cols == {
            "zns_open_us": 0.0,
            "zns_close_us": 0.0,
            "zns_finish_us": 0.0,
            "zns_reset_us": 0.0,
            "zns_forced_close": 0,
        }

    def test_cost_config_validation(self):
        with pytest.raises(ValueError):
            ZoneCostConfig(open_ns=-1)
        assert not ZoneCostConfig().any_nonzero
        assert ZoneCostConfig.measured().any_nonzero


# --- finish-on-close policy -------------------------------------------------------


class TestFinishOnClose:
    """``ZoneCostConfig.finish_on_close``: firmware that pads data-holding
    zones to FULL at close time instead of parking them CLOSED, releasing
    the *active* resource at the price of the unwritten tail."""

    def test_close_with_data_pads_to_full_as_finish(self):
        costs = ZoneCostConfig(close_ns=2_000, finish_ns=9_000, finish_on_close=True)
        zns = make_zns(costs)
        overhead = zns.config.timing.command_overhead_ns
        zns.append(0, b"\xaa" * PAGE)
        zns.close_zone(0)
        zone = zns.zones[0]
        assert zone.state is ZoneState.FULL
        assert zone.write_pointer == zone.end
        assert not zone.is_active
        mgmt = zns.zone_mgmt
        # The close became a FINISH: charged at finish cost, and the
        # close-family counters never move.
        assert mgmt.finishes == 1
        assert mgmt.finish_ns == overhead + costs.finish_ns
        assert mgmt.closes == 0
        assert mgmt.close_ns == 0

    def test_close_of_empty_zone_still_reverts_to_empty(self):
        costs = ZoneCostConfig(close_ns=2_000, finish_on_close=True)
        zns = make_zns(costs)
        overhead = zns.config.timing.command_overhead_ns
        zns.open_zone(0)
        zns.close_zone(0)
        # Nothing written: the ordinary close path (and cost) applies.
        assert zns.zones[0].state is ZoneState.EMPTY
        assert zns.zone_mgmt.closes == 1
        assert zns.zone_mgmt.close_ns == overhead + costs.close_ns
        assert zns.zone_mgmt.finishes == 0

    def test_close_of_non_open_zone_raises_typed_error(self):
        zns = make_zns(ZoneCostConfig(finish_on_close=True))
        zns.append(0, b"\xbb" * PAGE)
        zns.finish_zone(0)  # FULL now
        with pytest.raises(ZoneStateError):
            zns.close_zone(0)
        with pytest.raises(ZoneStateError):
            zns.close_zone(1)  # EMPTY, never opened

    def test_forced_close_pads_victim_and_frees_active_slot(self):
        """Contrast with ``test_active_cap_raises_even_with_forced_close``:
        padding the victim FULL releases its active slot, so the same
        max_active=2 squeeze that raises under plain forced close now
        admits the third zone."""
        costs = ZoneCostConfig(finish_ns=9_000, forced_close=True, finish_on_close=True)
        zns = make_zns(costs, max_open=2, max_active=2)
        overhead = zns.config.timing.command_overhead_ns
        payload = b"\xcc" * PAGE
        zns.append(0, payload)
        zns.append(1, payload)
        zns.append(0, payload)  # zone 1 is now the LRU open zone
        zns.append(2, payload)  # forced close pads zone 1 FULL
        assert zns.zones[1].state is ZoneState.FULL
        assert not zns.zones[1].is_active
        assert zns.zones[0].is_open and zns.zones[2].is_open
        mgmt = zns.zone_mgmt
        assert mgmt.forced_closes == 1
        assert mgmt.finishes == 1
        assert mgmt.finish_ns == overhead + costs.finish_ns
        assert mgmt.closes == 0

    def test_ztl_absorbs_surprise_full_open_zone(self):
        """The layer's open zone gets padded to FULL behind its back
        (forced-close contention from a co-located stream); the next
        region write bounces off the FULL state, the book marks the zone
        finished, and the write lands in a fresh slot — no data loss."""
        from repro.ztl import GcConfig, RegionTranslationLayer, ZtlConfig

        region = 16 * KIB
        geometry = NandGeometry(page_size=PAGE, pages_per_block=16, num_blocks=64)
        zns = ZnsSsd(
            SimClock(),
            ZnsConfig(
                geometry=geometry,
                zone_size=4 * geometry.block_size,
                zone_costs=ZoneCostConfig(finish_on_close=True),
            ),
        )
        layer = RegionTranslationLayer(
            zns,
            ZtlConfig(
                region_size=region,
                host_open_zones=1,
                gc=GcConfig(min_empty_zones=2, victim_valid_threshold=0.2),
            ),
        )
        layer.write_region(1, bytes([1]) * region)
        padded = layer.map.lookup(1).zone_index
        zns.close_zone(padded)  # finish_on_close: pads it FULL under the ZTL
        assert zns.zones[padded].state is ZoneState.FULL
        layer.write_region(2, bytes([2]) * region)
        assert layer.map.lookup(2).zone_index != padded
        assert layer.read_region(1).data == bytes([1]) * region
        assert layer.read_region(2).data == bytes([2]) * region

    def test_default_off_close_behaviour_unchanged(self):
        zns = make_zns(ZoneCostConfig(close_ns=2_000))
        zns.append(0, b"\xdd" * PAGE)
        zns.close_zone(0)
        assert zns.zones[0].state is ZoneState.CLOSED
        assert zns.zones[0].is_active
        assert zns.zone_mgmt.closes == 1
        assert zns.zone_mgmt.finishes == 0


# --- Z-Cache determinism ----------------------------------------------------------

ZC_SCALE = SchemeScale(
    zone_size=256 * KIB,
    region_size=16 * KIB,
    pages_per_block=16,
    ram_bytes=32 * KIB,
)


def _z_cache_stack():
    return build_scheme(
        "Z-Cache",
        SimClock(),
        ZC_SCALE,
        12 * ZC_SCALE.zone_size,
        9 * ZC_SCALE.zone_size,
        eviction_policy="fifo",
    )


def _closed_loop_row(stack):
    driver = CacheBenchDriver(
        CacheBenchConfig(num_ops=3_000, warmup_ops=500, num_keys=600, seed=11)
    )
    result = driver.run(stack.cache)
    store = stack.cache.store
    layer = stack.substrate["layer"]
    return {
        "scheme": store.scheme_name,
        "operations": result.operations,
        "hit_ratio": result.hit_ratio,
        "waf_app": result.waf_app,
        "hot_regions": store.hot_regions,
        "cold_regions": store.cold_regions,
        "groups": tuple(
            record.group for record in layer.book.records
        ),
        "clock_ns": stack.clock.now,
    }


class TestZCacheDeterminism:
    def test_sketch_routes_same_stream_to_same_groups(self):
        """Seeded CountMinSketch: two fresh stacks fed the identical key
        stream classify every flushed region identically — same hot/cold
        counts, same per-zone lifetime groups, same clock."""
        first = _closed_loop_row(_z_cache_stack())
        second = _closed_loop_row(_z_cache_stack())
        assert first == second
        assert first["scheme"] == "Z-Cache"
        # The stream actually exercised both sides of the classifier.
        assert first["hot_regions"] > 0
        assert first["cold_regions"] > 0
        assert len(set(first["groups"])) > 1

    def test_closed_loop_double_run_csv_diff_is_empty(self):
        rows = [_closed_loop_row(_z_cache_stack())]
        rerun = [_closed_loop_row(_z_cache_stack())]
        columns = sorted(rows[0])
        assert rows_to_csv(
            [{k: str(v) for k, v in r.items()} for r in rows], columns=columns
        ) == rows_to_csv(
            [{k: str(v) for k, v in r.items()} for r in rerun], columns=columns
        )

    def test_admission_and_store_share_one_sketch(self):
        stack = _z_cache_stack()
        assert stack.cache.admission.sketch is stack.cache.store.sketch

    def test_serving_smoke_double_run_rows_identical(self):
        """Two fresh Z-Cache clusters under the serving smoke load: the
        CSV-serialized tenant and shard rows diff empty."""
        import repro.bench.experiments as experiments
        from repro.serve import CacheCluster, Server, ServerConfig

        def one_run():
            scale = experiments._serving_scale()
            cluster = CacheCluster.homogeneous(
                "Z-Cache",
                2,
                12 * scale.zone_size,
                9 * scale.zone_size,
                scale=scale,
                cache_overrides=(("eviction_policy", "fifo"),),
            )
            tenants = experiments._serving_tenants(
                total_rate=120_000.0,
                requests_per_tenant=1_000,
                num_keys=1_500,
                seed=7,
            )
            report = Server(
                cluster, tenants, ServerConfig(max_queue_depth=24)
            ).run()
            return report.tenant_rows + report.shard_rows

        first, second = one_run(), one_run()
        columns = sorted({key for row in first for key in row})
        as_csv = lambda rows: rows_to_csv(  # noqa: E731
            [{k: str(row.get(k, "")) for k in columns} for row in rows],
            columns=columns,
        )
        assert as_csv(first) == as_csv(second)


# --- zero-cost golden regression --------------------------------------------------

# run_gc_qos_smoke() rows captured immediately before the cost model was
# introduced.  With every ZoneCostConfig field 0 (the default) the cost
# model must be invisible: these rows stay byte-identical.
GC_QOS_ZERO_COST_GOLDEN = [
    {
        "scheme": "Region-Cache", "pacing": "static", "routing": "static",
        "offered_total_kops": 12.0, "web_p99_us": 40134.561,
        "web_goodput_kops": 2.852266719953525,
        "web_slo_attainment": 0.904480135249366, "batch_p99_us": 41610.582,
        "batch_goodput_kops": 1.4830009830537176,
        "cluster_shed_rate": 0.279375, "rerouted_writes": 0,
        "rerouted_web": 0, "rerouted_batch": 0, "gc_layer": "ztl",
        "gc_victims": 33, "gc_migrated_units": 436, "gc_stall_us_p99": 0.0,
        "gc_throttled_steps": 0, "gc_pace_adjustments": 0,
        "gc_pace_clamps": 0, "gc_pace_units_end": 8,
    },
    {
        "scheme": "Region-Cache", "pacing": "static", "routing": "gc_aware",
        "offered_total_kops": 12.0, "web_p99_us": 38455.386,
        "web_goodput_kops": 2.9023353330678843,
        "web_slo_attainment": 0.906636670416198, "batch_p99_us": 42560.417,
        "batch_goodput_kops": 1.5600952643320853,
        "cluster_shed_rate": 0.28225, "rerouted_writes": 319,
        "rerouted_web": 100, "rerouted_batch": 219, "gc_layer": "ztl",
        "gc_victims": 34, "gc_migrated_units": 449, "gc_stall_us_p99": 0.0,
        "gc_throttled_steps": 0, "gc_pace_adjustments": 0,
        "gc_pace_clamps": 0, "gc_pace_units_end": 8,
    },
    {
        "scheme": "Region-Cache", "pacing": "adaptive", "routing": "static",
        "offered_total_kops": 12.0, "web_p99_us": 40134.561,
        "web_goodput_kops": 2.8521746836367177,
        "web_slo_attainment": 0.904480135249366, "batch_p99_us": 41610.582,
        "batch_goodput_kops": 1.5229368871505715,
        "cluster_shed_rate": 0.279625, "rerouted_writes": 0,
        "rerouted_web": 0, "rerouted_batch": 0, "gc_layer": "ztl",
        "gc_victims": 33, "gc_migrated_units": 435, "gc_stall_us_p99": 0.0,
        "gc_throttled_steps": 0, "gc_pace_adjustments": 5,
        "gc_pace_clamps": 5, "gc_pace_units_end": 2,
    },
    {
        "scheme": "Region-Cache", "pacing": "adaptive", "routing": "gc_aware",
        "offered_total_kops": 12.0, "web_p99_us": 38455.386,
        "web_goodput_kops": 2.903643710170991,
        "web_slo_attainment": 0.906636670416198, "batch_p99_us": 44121.622,
        "batch_goodput_kops": 1.5373820760737846,
        "cluster_shed_rate": 0.28225, "rerouted_writes": 319,
        "rerouted_web": 100, "rerouted_batch": 219, "gc_layer": "ztl",
        "gc_victims": 34, "gc_migrated_units": 449, "gc_stall_us_p99": 0.0,
        "gc_throttled_steps": 0, "gc_pace_adjustments": 5,
        "gc_pace_clamps": 5, "gc_pace_units_end": 2,
    },
]


@pytest.mark.slow
def test_gc_qos_zero_cost_rows_match_pre_cost_model_golden():
    from repro.bench.experiments import run_gc_qos_smoke

    rows = run_gc_qos_smoke()
    assert len(rows) == len(GC_QOS_ZERO_COST_GOLDEN)
    for row, want in zip(rows, GC_QOS_ZERO_COST_GOLDEN):
        for key, value in want.items():
            assert row[key] == value, (
                f"{row['pacing']}/{row['routing']}.{key}: {row[key]} != {value}"
            )


@pytest.mark.slow
def test_zone_cost_smoke_shape_and_knee_ordering():
    """The ablation's reason to exist, asserted: with measured costs the
    Z-Cache rows beat the Region-Cache rows on web p99 at the knee, and
    the zns_* columns are zero exactly when the preset is zero."""
    from repro.bench.experiments import run_zone_cost_smoke

    rows = run_zone_cost_smoke()
    assert len(rows) == 4
    cell = {(r["scheme"], r["cost_preset"]): r for r in rows}
    for (scheme, preset), row in cell.items():
        if preset == "zero":
            # Implicit opens are free (no request submitted) and nothing
            # closes/finishes; resets still carry the baseline command
            # overhead they always had.
            assert row["zns_open_us"] == 0.0
            assert row["zns_close_us"] == 0.0
            assert row["zns_finish_us"] == 0.0
            assert row["zns_forced_close"] == 0
        else:
            assert row["zns_open_us"] > 0.0
            # µs-scale resets dominate the zero preset's bare overhead.
            assert (
                row["zns_reset_us"] > cell[(scheme, "zero")]["zns_reset_us"]
            )
    assert (
        cell[("Z-Cache", "measured")]["web_p99_us"]
        < cell[("Region-Cache", "measured")]["web_p99_us"]
    )
    assert (
        cell[("Z-Cache", "measured")]["gc_copied_bytes"]
        < cell[("Region-Cache", "measured")]["gc_copied_bytes"]
    )
