"""Unit tests for the SIT and NAT tables."""

import pytest

from repro.errors import FileExistsInFsError, FileNotFoundInFsError
from repro.f2fs import NodeAddressTable, SegmentInfoTable


class TestSegmentInfoTable:
    def make(self) -> SegmentInfoTable:
        return SegmentInfoTable(num_sections=4, blocks_per_section=8)

    def test_mark_valid_tracks_owner(self):
        sit = self.make()
        sit.mark_valid(10, (1, 5))
        assert sit.is_valid(10)
        assert sit.owner_of(10) == (1, 5)
        assert sit.total_valid_blocks == 1

    def test_mark_invalid(self):
        sit = self.make()
        sit.mark_valid(10, (1, 5))
        sit.mark_invalid(10)
        assert not sit.is_valid(10)
        assert sit.owner_of(10) is None
        assert sit.total_valid_blocks == 0

    def test_double_mark_valid_updates_owner(self):
        sit = self.make()
        sit.mark_valid(10, (1, 5))
        sit.mark_valid(10, (2, 6))
        assert sit.total_valid_blocks == 1
        assert sit.owner_of(10) == (2, 6)

    def test_section_counters(self):
        sit = self.make()
        sit.mark_valid(8, (1, 0))   # section 1, offset 0
        sit.mark_valid(9, (1, 1))
        assert sit.valid_count(1) == 2
        assert sit.valid_fraction(1) == pytest.approx(0.25)
        assert list(sit.valid_blocks(1)) == [8, 9]

    def test_wipe_section(self):
        sit = self.make()
        sit.mark_valid(8, (1, 0))
        sit.mark_valid(9, (1, 1))
        sit.wipe_section(1)
        assert sit.valid_count(1) == 0
        assert sit.owner_of(8) is None
        assert sit.total_valid_blocks == 0

    def test_out_of_range_block(self):
        sit = self.make()
        with pytest.raises(IndexError):
            sit.mark_valid(4 * 8, (1, 0))

    def test_state_roundtrip(self):
        sit = self.make()
        sit.mark_valid(3, (7, 2))
        sit.mark_valid(20, (8, 0))
        restored = SegmentInfoTable.from_state(sit.to_state(), 4, 8)
        assert restored.is_valid(3)
        assert restored.owner_of(20) == (8, 0)
        assert restored.total_valid_blocks == 2

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            SegmentInfoTable(0, 8)


class TestNodeAddressTable:
    def test_create_and_lookup(self):
        nat = NodeAddressTable()
        file_id = nat.create_file("a")
        assert nat.lookup_file("a") == file_id
        assert nat.has_file("a")

    def test_duplicate_create_rejected(self):
        nat = NodeAddressTable()
        nat.create_file("a")
        with pytest.raises(FileExistsInFsError):
            nat.create_file("a")

    def test_missing_lookup_raises(self):
        with pytest.raises(FileNotFoundInFsError):
            NodeAddressTable().lookup_file("ghost")

    def test_block_mapping(self):
        nat = NodeAddressTable()
        fid = nat.create_file("a")
        assert nat.get_block(fid, 0) is None
        assert nat.set_block(fid, 0, 42) is None
        assert nat.get_block(fid, 0) == 42
        assert nat.set_block(fid, 0, 43) == 42  # returns stale address

    def test_size_high_water_mark(self):
        nat = NodeAddressTable()
        fid = nat.create_file("a")
        nat.update_size(fid, 100)
        nat.update_size(fid, 50)
        assert nat.size_of(fid) == 100

    def test_remove_returns_block_map(self):
        nat = NodeAddressTable()
        fid = nat.create_file("a")
        nat.set_block(fid, 0, 42)
        block_map = nat.remove_file("a")
        assert block_map == {0: 42}
        assert not nat.has_file("a")

    def test_state_roundtrip(self):
        nat = NodeAddressTable()
        fid = nat.create_file("a")
        nat.set_block(fid, 3, 99)
        nat.update_size(fid, 4096)
        restored = NodeAddressTable.from_state(nat.to_state())
        assert restored.lookup_file("a") == fid
        assert restored.get_block(fid, 3) == 99
        assert restored.size_of(fid) == 4096
        # ids keep advancing after restore
        assert restored.create_file("b") == fid + 1
