"""Unit tests for the db_bench driver (small configurations)."""

import pytest

from repro.bench.schemes import SchemeScale
from repro.units import KIB, MIB
from repro.workloads.dbbench import DbBenchConfig, DbBenchDriver

TINY_SCALE = SchemeScale(
    zone_size=256 * KIB, region_size=16 * KIB, pages_per_block=16,
    ram_bytes=16 * KIB, parallelism=4,
)


def tiny_config(**kwargs):
    defaults = dict(
        num_keys=4000,
        num_reads=400,
        warmup_reads=400,
        exp_range=25.0,
        cache_zones=3,
        hdd_bytes=64 * MIB,
        dram_block_cache_bytes=32 * KIB,
    )
    defaults.update(kwargs)
    return DbBenchConfig(**defaults)


class TestDbBenchConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_keys": 0},
            {"num_reads": 0},
            {"key_size": 4},
            {"value_size": 0},
            {"cache_zones": 0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            tiny_config(**kwargs)

    def test_key_value_shapes(self):
        driver = DbBenchDriver(tiny_config(), TINY_SCALE)
        assert len(driver.key_bytes(7)) == 16
        assert len(driver.value_bytes(7)) == 64


class TestDbBenchDriver:
    @pytest.mark.parametrize("scheme", ["Region-Cache", "Zone-Cache", "Block-Cache"])
    def test_run_produces_sane_result(self, scheme):
        driver = DbBenchDriver(tiny_config(scheme=scheme), TINY_SCALE)
        result = driver.run()
        assert result.scheme == scheme
        assert result.reads == 400
        assert result.ops_per_sec > 0
        assert 0.0 <= result.cache_hit_ratio <= 1.0
        assert result.found_ratio == 1.0  # every sampled key was inserted
        assert result.p99_ns >= result.p50_ns

    def test_deterministic(self):
        a = DbBenchDriver(tiny_config(), TINY_SCALE).run()
        b = DbBenchDriver(tiny_config(), TINY_SCALE).run()
        assert a.ops_per_sec == b.ops_per_sec
        assert a.cache_hit_ratio == b.cache_hit_ratio

    def test_skew_improves_hit_ratio(self):
        # The cache must be smaller than the working set for skew to
        # matter at all.
        flat = DbBenchDriver(
            tiny_config(exp_range=0.0, num_keys=16_000), TINY_SCALE
        ).run()
        skewed = DbBenchDriver(
            tiny_config(exp_range=25.0, num_keys=16_000), TINY_SCALE
        ).run()
        assert skewed.cache_hit_ratio > flat.cache_hit_ratio

    def test_bigger_cache_bigger_hit(self):
        small = DbBenchDriver(
            tiny_config(cache_zones=2, num_keys=8000), TINY_SCALE
        ).run()
        large = DbBenchDriver(
            tiny_config(cache_zones=6, num_keys=8000), TINY_SCALE
        ).run()
        assert large.cache_hit_ratio > small.cache_hit_ratio

    def test_zone_cache_floors_to_whole_zones(self):
        config = tiny_config(scheme="Zone-Cache", cache_zones=3.5)
        driver = DbBenchDriver(config, TINY_SCALE)
        driver.setup()
        assert driver.stack.cache.config.flash_bytes == 3 * TINY_SCALE.zone_size
