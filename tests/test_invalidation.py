"""Tests for invalidation storms (repro.serve.invalidation + server).

Covers plan/stats validation, the pre/post hit-window accounting and
recovery-slope fit, versioned tenants and their O(1) bumps, the
randomized failover plan's determinism, the server integration
(``serve.invalidate`` events and ledger reconciliation, including a
bump applied while a shard is dead), and the smoke's determinism and
per-scheme separation.  The full-sweep acceptance criteria run in the
slow tier.
"""

import pytest

from repro.bench.experiments import (
    run_invalidation_smoke,
    run_invalidation_sweep,
)
from repro.bench.schemes import SchemeScale
from repro.cache.lifecycle import LifecycleConfig, split_versioned
from repro.errors import ConfigError
from repro.serve import (
    CacheCluster,
    FailoverPlan,
    InvalidationPlan,
    InvalidationStats,
    ReplicationConfig,
    Server,
    ServerConfig,
    ShardKill,
    Tenant,
    TenantConfig,
    TenantInvalidate,
)
from repro.units import KIB, MSEC
from repro.workloads import CacheBenchConfig

SMALL = SchemeScale(
    zone_size=256 * KIB,
    region_size=16 * KIB,
    pages_per_block=16,
    ram_bytes=32 * KIB,
)

LIFECYCLE = LifecycleConfig(
    versioning=True, dead_first_eviction=True, gc_hints=True
)


def _cluster(shards=2, replication=None):
    return CacheCluster.homogeneous(
        "Region-Cache",
        shards,
        8 * SMALL.zone_size,
        6 * SMALL.zone_size,
        scale=SMALL,
        cache_overrides=(
            ("eviction_policy", "fifo"),
            ("lifecycle", LIFECYCLE),
        ),
        replication=replication,
    )


def _tenants(num_ops=400, rate=50_000.0, seed=5):
    return [
        TenantConfig(
            "web",
            rate_ops_per_sec=rate,
            versioned_keys=True,
            workload=CacheBenchConfig(
                num_ops=num_ops, num_keys=300, set_on_miss=True, seed=seed
            ),
            seed=21,
        ),
    ]


class TestValidation:
    def test_bump_fields(self):
        with pytest.raises(ConfigError):
            TenantInvalidate(at_ns=-1, tenant="web")
        with pytest.raises(ConfigError):
            TenantInvalidate(at_ns=0, tenant="")

    def test_plan_sorts_and_reports_first(self):
        plan = InvalidationPlan(
            (TenantInvalidate(9, "b"), TenantInvalidate(3, "a"))
        )
        assert [b.at_ns for b in plan.bumps] == [3, 9]
        assert plan.first_at_ns() == 3
        assert plan and not InvalidationPlan()

    def test_stats_bucket_validated(self):
        with pytest.raises(ConfigError):
            InvalidationStats(bucket_ns=0)

    def test_server_rejects_unknown_or_unversioned_tenant(self):
        cluster = _cluster()
        with pytest.raises(ConfigError):
            Server(
                cluster,
                _tenants(),
                ServerConfig(48),
                invalidations=InvalidationPlan(
                    (TenantInvalidate(MSEC, "nobody"),)
                ),
            )
        plain = [
            TenantConfig(
                "plain",
                rate_ops_per_sec=50_000.0,
                workload=CacheBenchConfig(num_ops=100, num_keys=50),
            )
        ]
        with pytest.raises(ConfigError):
            Server(
                _cluster(),
                plain,
                ServerConfig(48),
                invalidations=InvalidationPlan(
                    (TenantInvalidate(MSEC, "plain"),)
                ),
            )


class TestStatsWindows:
    def test_pre_post_split_at_first_bump(self):
        stats = InvalidationStats(bucket_ns=10)
        stats.note_lookup(5, True, 100)
        stats.note_bump(10)
        stats.note_bump(20)  # first_bump_ns sticks
        stats.note_lookup(15, False, 200)
        stats.note_lookup(25, True, 300)
        assert stats.first_bump_ns == 10
        assert (stats.pre_hits, stats.pre_lookups) == (1, 1)
        assert (stats.post_hits, stats.post_lookups) == (1, 2)
        assert stats.row()["inval_bumps"] == 2

    def test_recovery_slope_fits_rising_ratio(self):
        stats = InvalidationStats(bucket_ns=1_000_000_000)  # 1 s buckets
        stats.note_bump(0)
        # Bucket 0: 0% hits; bucket 1: 50%; bucket 2: 100%.
        for t, hit in ((100, False), (200, False)):
            stats.note_lookup(t, hit, 10)
        stats.note_lookup(1_500_000_000, True, 10)
        stats.note_lookup(1_600_000_000, False, 10)
        stats.note_lookup(2_500_000_000, True, 10)
        assert stats.recovery_slope_per_s() == pytest.approx(0.5)

    def test_slope_zero_without_two_buckets(self):
        stats = InvalidationStats()
        stats.note_bump(0)
        stats.note_lookup(1, True, 10)
        assert stats.recovery_slope_per_s() == 0.0

    def test_slope_zero_when_post_window_is_idle(self):
        # A bump with no post-bump lookups at all: no buckets, no fit.
        stats = InvalidationStats()
        stats.note_lookup(1, True, 10)  # pre-bump only
        stats.note_bump(5)
        assert stats.recovery_slope_per_s() == 0.0
        assert stats.row()["inval_recovery_slope_per_s"] == 0.0

    def test_slope_zero_for_single_populated_bucket(self):
        # Many samples, one bucket: a single point anchors no slope.
        stats = InvalidationStats(bucket_ns=1_000_000_000)
        stats.note_bump(0)
        for t, hit in ((100, True), (200, False), (300, True)):
            stats.note_lookup(t, hit, 10)
        assert stats.recovery_slope_per_s() == 0.0

    def test_partial_trailing_bucket_midpoint_clamped(self):
        # Bucket 0 at 0% hits; bucket 1 rises to 100% but the run ends
        # at 1.5 s, halfway through it.
        stats = InvalidationStats(bucket_ns=1_000_000_000)
        stats.note_bump(0)
        stats.note_lookup(100, False, 10)
        stats.note_lookup(200, False, 10)
        stats.note_lookup(1_200_000_000, True, 10)
        stats.note_lookup(1_400_000_000, True, 10)
        # Default fit places the tail at the full-bucket midpoint
        # (1.5 s), attributing its ratio later than any sample: 1.0/s.
        assert stats.recovery_slope_per_s() == pytest.approx(1.0)
        # With the run end known, the tail point moves to the midpoint
        # of the covered span (1.25 s), removing the bias.
        assert stats.recovery_slope_per_s(
            end_ns=1_500_000_000
        ) == pytest.approx(1.0 / 0.75)

    def test_end_on_bucket_boundary_changes_nothing(self):
        stats = InvalidationStats(bucket_ns=1_000_000_000)
        stats.note_bump(0)
        stats.note_lookup(100, False, 10)
        stats.note_lookup(1_500_000_000, True, 10)
        unclamped = stats.recovery_slope_per_s()
        # The trailing bucket is fully covered: end_ns is a no-op.
        assert stats.recovery_slope_per_s(end_ns=2_000_000_000) == unclamped


class TestVersionedTenant:
    def test_versioned_prefix_and_bump(self):
        tenant = Tenant(_tenants()[0])
        assert tenant.key_prefix == b"web:0:"
        assert tenant.invalidate() == 1
        assert tenant.key_prefix == b"web:1:"
        assert tenant.namespace_id == b"web"

    def test_invalidate_requires_versioned_keys(self):
        config = TenantConfig(
            "plain",
            rate_ops_per_sec=1_000.0,
            workload=CacheBenchConfig(num_ops=10, num_keys=5),
        )
        with pytest.raises(ConfigError):
            Tenant(config).invalidate()

    def test_versioned_keys_reject_explicit_prefix(self):
        with pytest.raises(ConfigError):
            TenantConfig(
                "web",
                rate_ops_per_sec=1_000.0,
                versioned_keys=True,
                key_prefix=b"other:",
                workload=CacheBenchConfig(num_ops=10, num_keys=5),
            )


class TestFailoverPlanRandom:
    def test_deterministic_under_seed(self):
        a = FailoverPlan.random(8, 10 * MSEC, kills=3, seed=11)
        b = FailoverPlan.random(8, 10 * MSEC, kills=3, seed=11)
        assert a.kills == b.kills
        assert a.kills != FailoverPlan.random(8, 10 * MSEC, kills=3, seed=12).kills

    def test_kills_distinct_and_inside_window(self):
        plan = FailoverPlan.random(
            6, 10 * MSEC, kills=4, seed=3, window=(0.2, 0.6)
        )
        shards = [k.shard for k in plan.kills]
        assert len(set(shards)) == 4
        for kill in plan.kills:
            assert 2 * MSEC <= kill.at_ns <= 6 * MSEC
            assert kill.outage_ns == int(10 * MSEC * 0.15)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FailoverPlan.random(0, MSEC)
        with pytest.raises(ConfigError):
            FailoverPlan.random(2, 0)
        with pytest.raises(ConfigError):
            FailoverPlan.random(2, MSEC, kills=3)
        with pytest.raises(ConfigError):
            FailoverPlan.random(2, MSEC, window=(0.6, 0.2))
        with pytest.raises(ConfigError):
            FailoverPlan.random(2, MSEC, outage_fraction=1.5)


def _bump_run(replication=None, failover=None, num_ops=400):
    cluster = _cluster(replication=replication)
    for shard in cluster.shards:
        shard.stack.cache.store.tracer.enable()
    server = Server(
        cluster,
        _tenants(num_ops=num_ops),
        ServerConfig(48),
        invalidations=InvalidationPlan((TenantInvalidate(3 * MSEC, "web"),)),
        failover=failover,
    )
    return cluster, server.run()


class TestServerIntegration:
    def test_bump_reaches_every_shard_with_events(self):
        cluster, report = _bump_run()
        row = report.inval_row
        assert row is not None
        assert row["inval_bumps"] == 1
        assert row["tenant_generations"] == 1
        assert row["tenant_versioned"] == 1
        events = []
        for shard in cluster.shards:
            cache = shard.stack.cache
            assert cache.lifecycle.namespaces.generation(b"web") == 1
            events.extend(cache.store.tracer.find("serve.invalidate"))
        assert len(events) == len(cluster.shards)

    def test_dead_bytes_reconcile_with_ledgers(self):
        cluster, report = _bump_run(num_ops=800)
        row = report.inval_row
        ledgers = [s.stack.cache.regions.ledger for s in cluster.shards]
        assert row["inval_dead_bytes"] == sum(
            lg.dead_bytes["invalidated"] for lg in ledgers
        )
        assert row["inval_dead_items"] == sum(
            lg.dead_items["invalidated"] for lg in ledgers
        )
        assert row["inval_dropped_regions"] == sum(
            lg.dead_generation_regions for lg in ledgers
        )
        assert row["inval_post_hit_ratio"] > 0.0

    def test_no_read_serves_pre_bump_generation(self):
        cluster, _ = _bump_run(num_ops=800)
        for shard in cluster.shards:
            cache = shard.stack.cache
            generation = cache.lifecycle.namespaces.generation(b"web")
            assert generation == 1
            stale = [
                key
                for key in cache.index.keys()
                if (parsed := split_versioned(key)) is not None
                and parsed[1] < generation
            ]
            for key in stale:
                assert cache.get(key) is None, key

    def test_bump_survives_shard_death_via_hint_journal(self):
        """A bump that fires while a shard is dead must still reach it:
        the nsbump rides the hint journal and replays at recovery, so
        even fallback reads never serve the old generation."""
        cluster, report = _bump_run(
            replication=ReplicationConfig(replicas=2),
            failover=FailoverPlan((ShardKill(2 * MSEC, 0, 4 * MSEC),)),
            num_ops=800,
        )
        assert report.inval_row["inval_bumps"] == 1
        for shard in cluster.shards:
            cache = shard.stack.cache
            assert cache.lifecycle.namespaces.generation(b"web") == 1
            for key in list(cache.index.keys()):
                parsed = split_versioned(key)
                if parsed is not None and parsed[1] < 1:
                    assert cache.get(key) is None, (shard.index, key)


class TestInvalidationSmokeGolden:
    def test_smoke_deterministic_and_shaped(self):
        rows_a = run_invalidation_smoke()
        rows_b = run_invalidation_smoke()
        assert rows_a == rows_b
        assert [r["scheme"] for r in rows_a] == [
            "Region-Cache",
            "Zone-Cache",
            "File-Cache",
            "Block-Cache",
            "Z-Cache",
        ]
        by_scheme = {r["scheme"]: r for r in rows_a}
        for row in rows_a:
            assert row["inval_bumps"] == 2
            assert row["tenant_versioned"] == 2
            assert row["inval_dead_bytes"] > 0
            assert row["inval_post_hit_ratio"] > 0
            # With hint_drop_position=0 every DROPPED GC unit is a
            # dead-generation region — the ledger and the reclaim
            # tracer must agree exactly.
            assert row["inval_dropped_regions"] == row["gc_dropped_units"]
        # The paper's separation: the ZNS-native schemes discover dead
        # bytes for free (zone reset / drop hints) while the Block-Cache
        # FTL copies them around first.
        block = by_scheme["Block-Cache"]
        assert block["gc_copied_bytes"] > 0
        assert by_scheme["Zone-Cache"]["gc_copied_bytes"] < block["gc_copied_bytes"]
        assert by_scheme["Z-Cache"]["gc_copied_bytes"] < block["gc_copied_bytes"]
        assert block["waf_device_max"] > 1.0


@pytest.mark.slow
class TestInvalidationSweepAcceptance:
    def test_separation_and_reconciliation_at_full_scale(self):
        rows = run_invalidation_sweep()
        by_scheme = {r["scheme"]: r for r in rows}
        block = by_scheme["Block-Cache"]
        assert block["gc_copied_bytes"] > 0
        for scheme in ("Zone-Cache", "Z-Cache"):
            assert (
                by_scheme[scheme]["gc_copied_bytes"]
                < block["gc_copied_bytes"]
            ), scheme
        for row in rows:
            assert row["inval_dead_bytes"] > 0, row["scheme"]
            assert row["inval_dropped_regions"] == row["gc_dropped_units"]
            assert row["inval_recovery_slope_per_s"] > 0, row["scheme"]
