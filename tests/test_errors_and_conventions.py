"""Cross-cutting tests: error hierarchy, clock conventions, RNG streams."""

import pytest

from repro import errors
from repro.sim import make_rng
from repro.sim.clock import SimClock


class TestErrorHierarchy:
    def test_all_errors_descend_from_repro_error(self):
        leaf_errors = [
            errors.OutOfRangeError,
            errors.AlignmentError,
            errors.ZoneStateError,
            errors.WritePointerError,
            errors.ZoneResourceError,
            errors.DeviceFullError,
            errors.NoSpaceError,
            errors.FileNotFoundInFsError,
            errors.FileExistsInFsError,
            errors.RegionNotMappedError,
            errors.TranslationFullError,
            errors.CacheConfigError,
            errors.ObjectTooLargeError,
            errors.DbClosedError,
        ]
        for leaf in leaf_errors:
            assert issubclass(leaf, errors.ReproError), leaf

    def test_layer_bases(self):
        assert issubclass(errors.WritePointerError, errors.ZoneStateError)
        assert issubclass(errors.ZoneStateError, errors.DeviceError)
        assert issubclass(errors.NoSpaceError, errors.FilesystemError)
        assert issubclass(errors.RegionNotMappedError, errors.TranslationError)
        assert issubclass(errors.ObjectTooLargeError, errors.CacheError)
        assert issubclass(errors.DbClosedError, errors.LsmError)

    def test_catching_the_base_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.WritePointerError("x")


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = make_rng(5, "workload")
        b = make_rng(5, "workload")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_streams_decorrelated(self):
        a = make_rng(5, "workload")
        b = make_rng(5, "device")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_empty_stream_uses_raw_seed(self):
        import random

        assert make_rng(5).random() == random.Random(5).random()


class TestClockConventions:
    def test_devices_advance_shared_clock(self):
        """Every device moves the one shared clock — the core simulation
        convention (DESIGN.md)."""
        from repro.flash import (
            BlockSsd,
            HddConfig,
            HddDevice,
            NullBlkDevice,
            ZnsSsd,
        )
        from repro.units import MIB

        clock = SimClock()
        devices = [
            BlockSsd(clock),
            ZnsSsd(clock),
            NullBlkDevice(clock, capacity_bytes=1 * MIB),
            HddDevice(clock, HddConfig(capacity_bytes=16 * MIB)),
        ]
        for device in devices:
            before = clock.now
            device.write(0, b"\x00" * 4096)
            assert clock.now > before, type(device).__name__

    def test_background_io_does_not_advance_clock(self):
        from repro.flash import ZnsSsd

        clock = SimClock()
        zns = ZnsSsd(clock)
        before = clock.now
        zns.write(0, b"\x00" * 4096, background=True)
        assert clock.now == before
        # But the device is busy: the next foreground op queues.
        latency = zns.read(0, 4096).latency_ns
        clock2 = SimClock()
        zns2 = ZnsSsd(clock2)
        zns2.write(0, b"\x00" * 4096)
        baseline = zns2.read(0, 4096).latency_ns
        assert latency > baseline


class TestFaultTaxonomy:
    """The retry/fatal split every fault handler in the stack relies on."""

    def test_transient_errors_are_retryable(self):
        for leaf in (
            errors.TransientMediaError,
            errors.AppendFailedError,
            errors.ZoneResourceError,
        ):
            assert issubclass(leaf, errors.RetryableError), leaf
            assert issubclass(leaf, errors.DeviceError), leaf

    def test_fatal_errors_are_not_retryable(self):
        assert issubclass(errors.FatalDeviceError, errors.DeviceError)
        assert not issubclass(errors.FatalDeviceError, errors.RetryableError)

    def test_zone_death_is_both_zone_state_and_fatal(self):
        # ZoneDeadError must stay catchable by legacy zone-state checks
        # *and* by the fault handlers' fatal branch.
        assert issubclass(errors.ZoneDeadError, errors.ZoneStateError)
        assert issubclass(errors.ZoneDeadError, errors.FatalDeviceError)
        assert not issubclass(errors.ZoneDeadError, errors.RetryableError)
        error = errors.ZoneDeadError("zone 7 went read-only", zone_index=7)
        assert error.zone_index == 7

    def test_power_cut_is_neither_retryable_nor_fatal(self):
        # Handlers must re-raise it before their retry/fatal branches:
        # making it either would silently eat the cut.
        assert issubclass(errors.PowerCutError, errors.DeviceError)
        assert not issubclass(errors.PowerCutError, errors.RetryableError)
        assert not issubclass(errors.PowerCutError, errors.FatalDeviceError)

    def test_corrupt_entry_is_a_cache_error(self):
        assert issubclass(errors.EntryCorruptError, errors.CacheError)
        assert not issubclass(errors.EntryCorruptError, errors.DeviceError)

    def test_retryable_split_partitions_device_failures(self):
        # Catching RetryableError then FatalDeviceError covers every
        # injected fault kind; nothing is both.
        for leaf in (
            errors.TransientMediaError,
            errors.AppendFailedError,
            errors.ZoneResourceError,
            errors.ZoneDeadError,
        ):
            retryable = issubclass(leaf, errors.RetryableError)
            fatal = issubclass(leaf, errors.FatalDeviceError)
            assert retryable != fatal, leaf
