"""Tests for ASCII plotting and the ZTL's zone-append mode."""

import random

import pytest

from repro.bench.plots import bar_chart, line_plot, scheme_bars
from repro.flash import NandGeometry, ZnsConfig, ZnsSsd
from repro.sim import SimClock
from repro.units import KIB
from repro.ztl import GcConfig, RegionTranslationLayer, ZtlConfig

REGION = 64 * KIB


class TestBarChart:
    def test_basic_render(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0], title="T", unit="x")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert "2x" in lines[2]
        # The larger value gets the full bar.
        assert lines[2].count("█") > lines[1].count("█")

    def test_zero_values(self):
        chart = bar_chart(["a"], [0.0])
        assert "0" in chart

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == "(no data)"


class TestLinePlot:
    def test_render_shape(self):
        plot = line_plot([1, 2, 3, 4, 50], title="jump")
        assert "jump" in plot
        assert "*" in plot

    def test_downsampling_long_series(self):
        plot = line_plot(list(range(1000)), width=40)
        longest = max(len(line) for line in plot.splitlines())
        assert longest < 60

    def test_flat_series(self):
        plot = line_plot([5, 5, 5])
        assert "*" in plot

    def test_empty(self):
        assert line_plot([]) == "(no data)"


class TestSchemeBars:
    def test_from_rows(self):
        rows = [
            {"scheme": "A", "tput": 1.5},
            {"scheme": "B", "tput": 3.0},
        ]
        chart = scheme_bars(rows, "tput")
        assert "A" in chart and "B" in chart


class TestZoneAppendMode:
    def make_layer(self, use_zone_append):
        clock = SimClock()
        geometry = NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=256)
        zns = ZnsSsd(clock, ZnsConfig(geometry=geometry, zone_size=4 * geometry.block_size))
        return RegionTranslationLayer(
            zns,
            ZtlConfig(
                region_size=REGION,
                use_zone_append=use_zone_append,
                gc=GcConfig(min_empty_zones=2),
            ),
        )

    def payload(self, tag):
        return bytes([tag % 251 + 1]) * REGION

    def test_append_roundtrip(self):
        layer = self.make_layer(True)
        layer.write_region(1, self.payload(1))
        layer.write_region(2, self.payload(2))
        assert layer.read_region(1).data == self.payload(1)
        assert layer.read_region(2).data == self.payload(2)

    def test_append_under_churn_matches_positioned_writes(self):
        results = {}
        for mode in (False, True):
            layer = self.make_layer(mode)
            rng = random.Random(9)
            live = 120
            for region_id in range(live):
                layer.write_region(region_id, self.payload(region_id))
            for step in range(600):
                region_id = rng.randrange(live)
                layer.write_region(region_id, self.payload(step))
            results[mode] = [
                layer.read_region(region_id).data[:8] for region_id in range(live)
            ]
        assert results[False] == results[True]

    def test_append_mode_still_wa_free(self):
        layer = self.make_layer(True)
        for region_id in range(100):
            layer.write_region(region_id % 40, self.payload(region_id))
        assert layer.device.stats.write_amplification == 1.0
