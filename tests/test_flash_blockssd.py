"""Unit tests for the conventional block SSD simulator."""

import random

import pytest

from repro.errors import AlignmentError, OutOfRangeError
from repro.flash import BlockSsd, BlockSsdConfig, FtlConfig
from tests.conftest import make_payload

PAGE = 4096


class TestBlockSsdIo:
    def test_read_back(self, block_ssd):
        payload = make_payload(2 * PAGE, tag=7)
        block_ssd.write(PAGE, payload)
        assert block_ssd.read(PAGE, 2 * PAGE).data == payload

    def test_unwritten_reads_zero(self, block_ssd):
        assert block_ssd.read(0, PAGE).data == b"\x00" * PAGE

    def test_overwrite_returns_new_data(self, block_ssd):
        block_ssd.write(0, make_payload(PAGE, 1))
        block_ssd.write(0, make_payload(PAGE, 2))
        assert block_ssd.read(0, PAGE).data == make_payload(PAGE, 2)

    def test_unaligned_write_rejected(self, block_ssd):
        with pytest.raises(AlignmentError):
            block_ssd.write(100, make_payload(PAGE, 1))

    def test_unaligned_length_rejected(self, block_ssd):
        with pytest.raises(AlignmentError):
            block_ssd.write(0, b"xy")

    def test_out_of_range_rejected(self, block_ssd):
        cap = block_ssd.capacity_bytes
        with pytest.raises(OutOfRangeError):
            block_ssd.read(cap, PAGE)
        with pytest.raises(OutOfRangeError):
            block_ssd.write(cap - PAGE, make_payload(2 * PAGE, 1))

    def test_discard_drops_data(self, block_ssd):
        block_ssd.write(0, make_payload(PAGE, 9))
        block_ssd.discard(0, PAGE)
        assert block_ssd.read(0, PAGE).data == b"\x00" * PAGE


class TestBlockSsdTiming:
    def test_io_advances_clock(self, clock, block_ssd):
        before = clock.now
        result = block_ssd.write(0, make_payload(PAGE, 1))
        assert clock.now == before + result.latency_ns

    def test_write_slower_than_read(self, block_ssd):
        write_lat = block_ssd.write(0, make_payload(PAGE, 1)).latency_ns
        read_lat = block_ssd.read(0, PAGE).latency_ns
        assert write_lat > read_lat

    def test_latency_recorded_in_stats(self, block_ssd):
        block_ssd.write(0, make_payload(PAGE, 1))
        assert block_ssd.stats.write_latency.count == 1


class TestBlockSsdGcBehaviour:
    def churn(self, ssd: BlockSsd, factor: int = 3, seed: int = 5) -> None:
        rng = random.Random(seed)
        pages = ssd.capacity_bytes // PAGE
        for i in range(pages):
            ssd.write(i * PAGE, make_payload(PAGE, i))
        for _ in range(pages * factor):
            ssd.write(rng.randrange(pages) * PAGE, make_payload(PAGE, 0xAB))

    def test_churn_produces_wa(self, block_ssd):
        self.churn(block_ssd)
        assert block_ssd.stats.write_amplification > 1.0
        assert block_ssd.stats.gc_runs > 0
        assert block_ssd.stats.erase_count > 0

    def test_gc_inflates_tail_latency(self, block_ssd):
        """Device GC stalls produce p99 >> p50 — Figure 5(d)'s mechanism."""
        self.churn(block_ssd)
        stats = block_ssd.stats.write_latency
        assert stats.p99() > 2 * stats.p50()

    def test_waf_in_snapshot(self, block_ssd):
        self.churn(block_ssd)
        snap = block_ssd.stats.snapshot()
        assert snap["write_amplification"] == pytest.approx(
            block_ssd.stats.write_amplification
        )

    def test_data_integrity_across_gc(self, clock, small_geometry):
        """Read-back correctness must hold even while GC relocates pages."""
        ssd = BlockSsd(
            clock,
            BlockSsdConfig(
                geometry=small_geometry,
                ftl=FtlConfig(op_ratio=0.25, gc_low_watermark=2, gc_high_watermark=4),
            ),
        )
        rng = random.Random(23)
        pages = ssd.capacity_bytes // PAGE
        expected = {}
        for step in range(pages * 4):
            lpn = rng.randrange(pages)
            payload = make_payload(PAGE, step)
            ssd.write(lpn * PAGE, payload)
            expected[lpn] = payload
        for lpn, payload in expected.items():
            assert ssd.read(lpn * PAGE, PAGE).data == payload
