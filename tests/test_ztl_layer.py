"""Integration-level tests for the region translation layer on a ZNS SSD."""

import random

import pytest

from repro.errors import RegionNotMappedError, TranslationFullError
from repro.flash import NandGeometry, ZnsConfig, ZnsSsd
from repro.sim import SimClock
from repro.units import KIB
from repro.ztl import GcConfig, RegionTranslationLayer, ZtlConfig
from repro.ztl.allocator import ZoneBook, ZoneUse

REGION = 64 * KIB


def make_layer(
    num_blocks=256,
    zone_blocks=4,
    region_size=REGION,
    min_empty=4,
    threshold=0.2,
    usable_zones=0,
    hint=None,
    on_drop=None,
):
    clock = SimClock()
    geometry = NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=num_blocks)
    zns = ZnsSsd(clock, ZnsConfig(geometry=geometry, zone_size=zone_blocks * geometry.block_size))
    layer = RegionTranslationLayer(
        zns,
        ZtlConfig(
            region_size=region_size,
            host_open_zones=2,
            usable_zones=usable_zones,
            gc=GcConfig(min_empty_zones=min_empty, victim_valid_threshold=threshold),
        ),
        migration_hint=hint,
        on_drop=on_drop,
    )
    return layer


def payload(region_id: int, size: int = REGION) -> bytes:
    return bytes([region_id % 256]) * size


class TestZtlBasics:
    def test_write_read_roundtrip(self):
        layer = make_layer()
        layer.write_region(1, payload(1))
        assert layer.read_region(1).data == payload(1)

    def test_partial_read_with_offset(self):
        layer = make_layer()
        layer.write_region(1, payload(1))
        result = layer.read_region(1, offset=4096, length=4096)
        assert result.data == payload(1)[4096:8192]

    def test_read_unmapped_raises(self):
        layer = make_layer()
        with pytest.raises(RegionNotMappedError):
            layer.read_region(99)

    def test_read_beyond_region_rejected(self):
        layer = make_layer()
        layer.write_region(1, payload(1))
        with pytest.raises(ValueError):
            layer.read_region(1, offset=REGION - 4096, length=8192)

    def test_wrong_size_write_rejected(self):
        layer = make_layer()
        with pytest.raises(ValueError):
            layer.write_region(1, b"small")

    def test_rewrite_replaces_data(self):
        layer = make_layer()
        layer.write_region(1, payload(1))
        layer.write_region(1, payload(2))
        assert layer.read_region(1).data == payload(2)
        assert layer.live_regions == 1

    def test_invalidate(self):
        layer = make_layer()
        layer.write_region(1, payload(1))
        assert layer.invalidate_region(1)
        assert not layer.has_region(1)
        assert not layer.invalidate_region(1)

    def test_region_size_must_divide_zone(self):
        with pytest.raises(ValueError):
            make_layer(region_size=48 * KIB)  # zone is 256 KiB

    def test_fills_multiple_zones_round_robin(self):
        layer = make_layer()
        for region_id in range(8):
            layer.write_region(region_id, payload(region_id))
        zones_used = {layer.map.lookup(r).zone_index for r in range(8)}
        assert len(zones_used) >= 2  # concurrent open zones


class TestZtlGc:
    def churn(self, layer, live=180, steps=1500, seed=3):
        rng = random.Random(seed)
        for region_id in range(live):
            layer.write_region(region_id, payload(region_id))
        for _ in range(steps):
            region_id = rng.randrange(live)
            layer.write_region(region_id, payload(region_id))
        return live

    def test_gc_reclaims_zones(self):
        layer = make_layer()
        self.churn(layer)
        assert layer.gc.zones_collected > 0
        assert layer.book.empty_count >= 1

    def test_data_survives_gc(self):
        layer = make_layer()
        live = self.churn(layer)
        for region_id in range(live):
            assert layer.read_region(region_id).data == payload(region_id)

    def test_device_wa_stays_one(self):
        layer = make_layer()
        self.churn(layer)
        assert layer.device.stats.write_amplification == 1.0

    def test_app_waf_above_one_under_churn(self):
        layer = make_layer()
        self.churn(layer)
        assert layer.stats.app_write_amplification > 1.0

    def test_lower_utilization_lower_waf(self):
        """More OP (fewer live regions) → less migration → lower app WAF."""
        low = make_layer()
        self.churn(low, live=120)
        high = make_layer()
        self.churn(high, live=200)
        assert (
            low.stats.app_write_amplification < high.stats.app_write_amplification
        )

    def test_migration_hint_drops_regions(self):
        dropped = []
        layer = make_layer(hint=lambda region_id: False, on_drop=dropped.append)
        self.churn(layer, live=200, steps=800)
        assert layer.gc.regions_dropped > 0
        assert layer.gc.regions_migrated == 0
        assert dropped
        assert layer.stats.app_write_amplification == pytest.approx(1.0)

    def test_dropped_regions_unmapped(self):
        layer = make_layer(hint=lambda region_id: False)
        live = self.churn(layer, live=200, steps=800)
        # Some regions were dropped by GC: they must be unmapped, not stale.
        assert layer.live_regions < live
        for region_id in range(live):
            if layer.has_region(region_id):
                assert layer.read_region(region_id).data == payload(region_id)

    def test_full_layer_raises_when_gc_cannot_help(self):
        layer = make_layer(min_empty=1)
        with pytest.raises(TranslationFullError):
            # All regions unique and live: GC has nothing to reclaim.
            for region_id in range(layer.total_slots + 8):
                layer.write_region(region_id, payload(region_id))

    def test_usable_zones_restricts_capacity(self):
        layer = make_layer(usable_zones=10)
        assert layer.num_zones == 10
        assert layer.capacity_bytes == 10 * layer.zone_size


class TestZoneBook:
    def test_roles_progress(self):
        book = ZoneBook(num_zones=4, slots_per_zone=2, host_open_target=1)
        record = book.allocate_host_slot()
        assert record.use == ZoneUse.HOST_OPEN
        book.note_slot_written(record)
        book.note_slot_written(record)
        assert record.use == ZoneUse.FINISHED
        assert record.zone_index in book.finished_zones

    def test_mark_empty_returns_to_pool(self):
        book = ZoneBook(num_zones=4, slots_per_zone=2, host_open_target=1)
        record = book.allocate_host_slot()
        book.note_slot_written(record)
        book.note_slot_written(record)
        before = book.empty_count
        book.mark_empty(record.zone_index)
        assert book.empty_count == before + 1
        assert record.use == ZoneUse.EMPTY
        assert record.next_slot == 0

    def test_gc_stream_is_separate(self):
        book = ZoneBook(num_zones=4, slots_per_zone=2, host_open_target=1)
        host = book.allocate_host_slot()
        gc = book.allocate_gc_slot()
        assert host.zone_index != gc.zone_index
        assert gc.use == ZoneUse.GC_OPEN

    def test_exhaustion_raises(self):
        book = ZoneBook(
            num_zones=2, slots_per_zone=1, host_open_target=2, reserved_for_gc=0
        )
        for _ in range(2):
            record = book.allocate_host_slot()
            book.note_slot_written(record)
        with pytest.raises(TranslationFullError):
            book.allocate_host_slot()

    def test_gc_reserve_withheld_from_host(self):
        book = ZoneBook(
            num_zones=2, slots_per_zone=1, host_open_target=2, reserved_for_gc=1
        )
        record = book.allocate_host_slot()
        book.note_slot_written(record)
        # The last empty zone is reserved for the GC stream.
        with pytest.raises(TranslationFullError):
            book.allocate_host_slot()
        assert book.allocate_gc_slot() is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            ZoneBook(1, 1, 1)
        with pytest.raises(ValueError):
            ZoneBook(4, 0, 1)
        with pytest.raises(ValueError):
            ZoneBook(4, 1, 0)
