"""Tests for the benchmark harness: reporting, scheme builders, and
small-scale shape checks of the experiment functions."""

import pytest

from repro.bench import (
    SCHEME_NAMES,
    SchemeScale,
    build_scheme,
    format_table,
    rows_to_csv,
    run_fig2_overall,
    run_fig3_insertion_time,
)
from repro.sim import SimClock
from repro.units import KIB

SMALL = SchemeScale(
    zone_size=256 * KIB, region_size=16 * KIB, pages_per_block=16,
    ram_bytes=32 * KIB,
)


class TestReporting:
    ROWS = [
        {"scheme": "A", "value": 1.23456, "count": 7},
        {"scheme": "B", "value": 2.0, "count": None},
    ]

    def test_format_table_contains_all_cells(self):
        text = format_table(self.ROWS, title="T")
        assert "T" in text
        assert "scheme" in text
        assert "1.235" in text  # 4 significant digits
        assert "B" in text

    def test_format_table_column_subset(self):
        text = format_table(self.ROWS, columns=["scheme"])
        assert "value" not in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_csv(self):
        csv = rows_to_csv(self.ROWS)
        lines = csv.splitlines()
        assert lines[0] == "scheme,value,count"
        assert lines[1].startswith("A,1.235")
        assert lines[2].endswith(",")  # None renders empty

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""


class TestSchemeBuilders:
    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_build_scheme_by_name(self, name):
        media = 16 * SMALL.zone_size
        file_media = 2 * media if name == "File-Cache" else media
        stack = build_scheme(name, SimClock(), SMALL, file_media, 12 * SMALL.zone_size)
        assert stack.name == name
        stack.cache.set(b"k", b"v")
        assert stack.cache.get(b"k") == b"v"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_scheme("Quantum-Cache", SimClock(), SMALL, 1, 1)

    def test_matched_hardware(self):
        """Zone and Region schemes share NAND geometry — the paper's
        'hardware compatible' premise."""
        media = 16 * SMALL.zone_size
        zone = build_scheme("Zone-Cache", SimClock(), SMALL, media, media)
        region = build_scheme("Region-Cache", SimClock(), SMALL, media, media // 2)
        zone_geo = zone.substrate["device"].config.geometry
        region_geo = region.substrate["device"].config.geometry
        assert zone_geo == region_geo

    def test_zone_cache_has_no_op(self):
        media = 16 * SMALL.zone_size
        stack = build_scheme("Zone-Cache", SimClock(), SMALL, media, media)
        assert stack.cache_bytes == media  # the whole device caches

    def test_block_cache_exports_less_than_media(self):
        media = 16 * SMALL.zone_size
        stack = build_scheme("Block-Cache", SimClock(), SMALL, media, media)
        # FTL over-provisioning shrinks what the cache can use.
        assert stack.cache_bytes < media


class TestExperimentShapes:
    """Miniature experiment runs: fast, checking structure not numbers."""

    def test_fig2_rows_structure(self):
        rows = run_fig2_overall(
            scale=SMALL, zones=8, cache_zones=6, file_zones=14,
            num_keys=1200, num_ops=2500,
        )
        assert {r["scheme"] for r in rows} == set(SCHEME_NAMES)
        for row in rows:
            assert row["throughput_mops_per_min"] > 0
            assert 0 <= row["hit_ratio"] <= 1
            assert row["waf_app"] >= 1.0

    def test_fig2_zone_cache_is_biggest(self):
        rows = run_fig2_overall(
            scale=SMALL, zones=8, cache_zones=6, file_zones=14,
            num_keys=1200, num_ops=2000,
        )
        by_scheme = {r["scheme"]: r for r in rows}
        assert by_scheme["Zone-Cache"]["cache_mib"] > by_scheme["Block-Cache"]["cache_mib"]

    def test_fig3_series_structure(self):
        series = run_fig3_insertion_time(scale=SMALL, zones=8, num_sets=3000)
        assert set(series) == {"large_region", "small_region"}
        # Small regions seal far more often than zone-sized ones.
        assert len(series["small_region"]) > 4 * len(series["large_region"])
        for points in series.values():
            assert all(p["fill_time_us"] >= 0 for p in points)
