"""TTL (expiry) behaviour of the hybrid cache."""

import pytest

from repro.bench.schemes import SchemeScale, build_region_cache
from repro.sim import SimClock
from repro.units import KIB

SCALE = SchemeScale(
    zone_size=256 * KIB, region_size=16 * KIB, pages_per_block=16,
    ram_bytes=32 * KIB,
)


@pytest.fixture
def stack():
    return build_region_cache(SimClock(), SCALE, 16 * 256 * KIB, 12 * 256 * KIB)


class TestTtl:
    def test_item_readable_before_expiry(self, stack):
        stack.cache.set(b"k", b"v", ttl_seconds=10.0)
        assert stack.cache.get(b"k") == b"v"

    def test_item_expires_from_ram(self, stack):
        cache = stack.cache
        cache.set(b"k", b"v", ttl_seconds=0.5)
        stack.clock.advance(int(1e9))  # 1 simulated second
        assert cache.get(b"k") is None

    def test_item_expires_from_flash(self, stack):
        cache = stack.cache
        cache.set(b"k", b"v", ttl_seconds=0.5)
        cache.flush()
        cache.ram.clear()
        cache._expiry.clear()  # simulate a restart losing RAM metadata
        stack.clock.advance(int(1e9))
        # Expiry travels in the on-flash header, so it still expires.
        assert cache.get(b"k") is None
        assert cache.stats.expired_reads == 1

    def test_expired_item_purged_on_access(self, stack):
        cache = stack.cache
        cache.set(b"k", b"v", ttl_seconds=0.1)
        stack.clock.advance(int(1e9))
        cache.get(b"k")
        assert not cache.contains(b"k")

    def test_reset_ttl_on_overwrite(self, stack):
        cache = stack.cache
        cache.set(b"k", b"v1", ttl_seconds=0.1)
        cache.set(b"k", b"v2")  # no TTL this time
        stack.clock.advance(int(1e9))
        assert cache.get(b"k") == b"v2"

    def test_invalid_ttl_rejected(self, stack):
        with pytest.raises(ValueError):
            stack.cache.set(b"k", b"v", ttl_seconds=0)

    def test_delete_clears_expiry(self, stack):
        cache = stack.cache
        cache.set(b"k", b"v", ttl_seconds=5.0)
        cache.delete(b"k")
        assert b"k" not in cache._expiry

    def test_hit_ratio_counts_expired_as_miss(self, stack):
        cache = stack.cache
        cache.set(b"k", b"v", ttl_seconds=0.1)
        stack.clock.advance(int(1e9))
        cache.get(b"k")
        assert cache.stats.lookups.misses == 1

    def test_expiry_routes_through_liveness_ledger(self, stack):
        # Expired flash bytes report to the region ledger under the
        # "expired" reason — same account the eviction order and the
        # invalidation sweep read (no more ad-hoc expiry counters).
        cache = stack.cache
        cache.set(b"k", b"v" * 64, ttl_seconds=0.1)
        cache.flush()
        stack.clock.advance(int(1e9))
        cache.get(b"k")
        assert cache.regions.ledger.dead_bytes["expired"] > 0
        assert cache.regions.ledger.dead_items["expired"] == 1
