"""Unit tests for F2FS layout math and config validation."""

import pytest

from repro.f2fs import F2fsConfig, F2fsLayout
from repro.units import KIB


def make_layout(zone_size=512 * KIB, num_zones=32, **config_kwargs) -> F2fsLayout:
    return F2fsLayout.for_device(zone_size, num_zones, F2fsConfig(**config_kwargs))


class TestF2fsConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"block_size": 0},
            {"segments_per_section": 0},
            {"provision_ratio": -0.1},
            {"provision_ratio": 0.95},
            {"meta_batch_blocks": 0},
            {"cpu_ns_per_block": -1},
            {"checkpoint_interval_blocks": 0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            F2fsConfig(**kwargs)


class TestF2fsLayout:
    def test_derived_counts(self):
        layout = make_layout()
        assert layout.blocks_per_section == 128
        assert layout.blocks_per_segment == 32
        assert layout.num_sections == 32

    def test_provisioning_reserved(self):
        layout = make_layout(provision_ratio=0.25)
        assert layout.reserved_sections == 8
        assert layout.usable_sections == 24
        assert layout.usable_bytes == 24 * 512 * KIB

    def test_minimum_reserve_is_two(self):
        layout = make_layout(num_zones=4, provision_ratio=0.0)
        assert layout.reserved_sections == 2

    def test_excessive_reserve_rejected(self):
        with pytest.raises(ValueError):
            make_layout(num_zones=2, provision_ratio=0.8)

    def test_zone_must_align_to_segments(self):
        with pytest.raises(ValueError):
            F2fsLayout.for_device(100 * KIB, 8, F2fsConfig(segments_per_section=3))

    def test_address_math_roundtrip(self):
        layout = make_layout()
        addr = layout.block_addr(section=3, offset=17)
        assert layout.section_of_block(addr) == 3
        assert layout.block_offset_in_section(addr) == 17
        assert layout.device_offset(addr) == 3 * 512 * KIB + 17 * 4 * KIB
