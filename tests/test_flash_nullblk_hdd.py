"""Unit tests for the nullblk and HDD device models."""

import pytest

from repro.errors import AlignmentError, OutOfRangeError
from repro.flash import HddConfig, HddDevice, NullBlkDevice
from repro.sim import SimClock
from repro.units import MIB
from tests.conftest import make_payload

PAGE = 4096


class TestNullBlk:
    def test_read_back(self, clock):
        dev = NullBlkDevice(clock, capacity_bytes=1 * MIB)
        dev.write(PAGE, make_payload(PAGE, 4))
        assert dev.read(PAGE, PAGE).data == make_payload(PAGE, 4)

    def test_constant_latency(self, clock):
        dev = NullBlkDevice(clock, capacity_bytes=1 * MIB)
        latencies = {dev.write(i * PAGE, make_payload(PAGE, i)).latency_ns for i in range(8)}
        assert len(latencies) == 1

    def test_no_write_amplification(self, clock):
        dev = NullBlkDevice(clock, capacity_bytes=1 * MIB)
        dev.write(0, make_payload(PAGE, 1))
        assert dev.stats.write_amplification == 1.0

    def test_alignment_enforced(self, clock):
        dev = NullBlkDevice(clock, capacity_bytes=1 * MIB)
        with pytest.raises(AlignmentError):
            dev.write(1, make_payload(PAGE, 1))

    def test_capacity_enforced(self, clock):
        dev = NullBlkDevice(clock, capacity_bytes=1 * MIB)
        with pytest.raises(OutOfRangeError):
            dev.read(1 * MIB, PAGE)

    def test_bad_capacity_rejected(self, clock):
        with pytest.raises(ValueError):
            NullBlkDevice(clock, capacity_bytes=1000)  # not block aligned

    def test_clock_advances(self, clock):
        dev = NullBlkDevice(clock, capacity_bytes=1 * MIB)
        before = clock.now
        dev.write(0, make_payload(PAGE, 1))
        assert clock.now > before


class TestHdd:
    def make(self, clock, **kwargs) -> HddDevice:
        return HddDevice(clock, HddConfig(capacity_bytes=64 * MIB, **kwargs))

    def test_read_back(self, clock):
        dev = self.make(clock)
        dev.write(8 * PAGE, make_payload(2 * PAGE, 6))
        assert dev.read(8 * PAGE, 2 * PAGE).data == make_payload(2 * PAGE, 6)

    def test_unwritten_reads_zero(self, clock):
        dev = self.make(clock)
        assert dev.read(0, PAGE).data == b"\x00" * PAGE

    def test_sequential_faster_than_random(self, clock):
        dev = self.make(clock)
        # Sequential scan.
        seq = [dev.read(i * PAGE, PAGE).latency_ns for i in range(64)]
        # Long-distance strided reads force seeks.
        stride = 1 * MIB
        rand = [dev.read((i * 7 % 60) * stride, PAGE).latency_ns for i in range(64)]
        assert sum(seq) / len(seq) < sum(rand) / len(rand) / 10

    def test_random_read_costs_milliseconds(self, clock):
        """The end-to-end experiment depends on HDD misses costing ~ms."""
        dev = self.make(clock)
        dev.read(0, PAGE)
        far = dev.read(32 * MIB, PAGE).latency_ns
        assert far > 1_000_000  # > 1 ms

    def test_determinism_with_seed(self):
        lat_a = []
        lat_b = []
        for target in (lat_a, lat_b):
            clock = SimClock()
            dev = HddDevice(clock, HddConfig(capacity_bytes=64 * MIB), seed=3)
            for i in range(16):
                target.append(dev.read((i * 13 % 50) * MIB, PAGE).latency_ns)
        assert lat_a == lat_b

    def test_alignment_enforced(self, clock):
        dev = self.make(clock)
        with pytest.raises(AlignmentError):
            dev.read(10, PAGE)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            HddConfig(capacity_bytes=5000)
