"""Unit tests for repro.units helpers."""

import pytest

from repro.units import (
    GIB,
    KIB,
    MIB,
    align_down,
    align_up,
    format_size,
    is_aligned,
    msec,
    sec,
    to_seconds,
    usec,
)


class TestSizeConstants:
    def test_progression(self):
        assert KIB == 1024
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB


class TestTimeConversions:
    def test_usec(self):
        assert usec(1) == 1_000

    def test_usec_fractional(self):
        assert usec(2.5) == 2_500

    def test_msec(self):
        assert msec(3) == 3_000_000

    def test_sec_roundtrip(self):
        assert to_seconds(sec(4.5)) == pytest.approx(4.5)


class TestAlignment:
    def test_align_down(self):
        assert align_down(4097, 4096) == 4096

    def test_align_down_exact(self):
        assert align_down(8192, 4096) == 8192

    def test_align_up(self):
        assert align_up(4097, 4096) == 8192

    def test_align_up_exact(self):
        assert align_up(8192, 4096) == 8192

    def test_is_aligned(self):
        assert is_aligned(8192, 4096)
        assert not is_aligned(8191, 4096)

    @pytest.mark.parametrize("func", [align_down, align_up, is_aligned])
    def test_rejects_nonpositive_alignment(self, func):
        with pytest.raises(ValueError):
            func(100, 0)


class TestFormatSize:
    def test_bytes(self):
        assert format_size(512) == "512B"

    def test_mib(self):
        assert format_size(16 * MIB) == "16.0MiB"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_size(-1)
