"""Crash-recovery and scan tests for the LSM store."""

import random

import pytest

from repro.errors import LsmError
from repro.flash import HddConfig, HddDevice, NullBlkDevice
from repro.lsm import Db, DbConfig, Manifest, SSTable, merge_sources, scan_range
from repro.lsm.compaction import TOMBSTONE, CompactionConfig
from repro.lsm.sstable import SSTableBuilder
from repro.lsm.table_space import TableSpace
from repro.sim import SimClock
from repro.units import KIB, MIB


def make_db(device=None, clock=None):
    clock = clock or SimClock()
    device = device or HddDevice(clock, HddConfig(capacity_bytes=64 * MIB))
    config = DbConfig(
        memtable_bytes=32 * KIB,
        block_cache_bytes=16 * KIB,
        wal_bytes=256 * KIB,
        compaction=CompactionConfig(
            l0_trigger=3, l1_target_bytes=256 * KIB, max_table_bytes=64 * KIB
        ),
    )
    return Db(clock, device, config), device, clock, config


def key(i: int) -> bytes:
    return f"user{i:08d}".encode()


class TestSSTablePersistence:
    def test_open_from_footer(self):
        clock = SimClock()
        space = TableSpace(NullBlkDevice(clock, capacity_bytes=4 * MIB))
        builder = SSTableBuilder(7, space)
        for i in range(200):
            builder.add(key(i), f"value{i}".encode())
        table = builder.finish()
        reopened = SSTable.open(space, table.extent_offset, table.extent_size)
        assert reopened.table_id == 7
        assert reopened.smallest == key(0)
        assert reopened.largest == key(199)
        assert reopened.num_entries == 200
        handle = reopened.block_for(key(123))
        from repro.lsm.block import DataBlock

        assert DataBlock(reopened.read_block(handle)).get(key(123)) == b"value123"

    def test_open_garbage_rejected(self):
        clock = SimClock()
        device = NullBlkDevice(clock, capacity_bytes=1 * MIB)
        space = TableSpace(device)
        offset = space.allocate(64 * KIB)
        with pytest.raises(LsmError):
            SSTable.open(space, offset, 64 * KIB)


class TestManifest:
    def test_store_load_roundtrip(self):
        clock = SimClock()
        device = NullBlkDevice(clock, capacity_bytes=1 * MIB)
        manifest = Manifest(device, offset=0, size=64 * KIB)
        levels = [[(1, 4096, 8192)], [], [(2, 16384, 8192), (3, 32768, 8192)]]
        manifest.store(levels, next_table_id=9, wal_epoch=4)
        state = manifest.load()
        assert state["levels"] == levels
        assert state["next_table_id"] == 9
        assert state["wal_epoch"] == 4

    def test_load_empty_returns_none(self):
        clock = SimClock()
        device = NullBlkDevice(clock, capacity_bytes=1 * MIB)
        manifest = Manifest(device, offset=0, size=64 * KIB)
        assert manifest.load() is None


class TestCrashRecovery:
    def test_recover_flushed_and_unflushed_data(self):
        db, device, clock, config = make_db()
        expected = {}
        for i in range(2000):  # enough to flush + compact several times
            db.put(key(i), f"value{i}".encode())
            expected[i] = f"value{i}".encode()
        # Some unflushed tail in the memtable + WAL:
        for i in range(2000, 2050):
            db.put(key(i), f"tail{i}".encode())
            expected[i] = f"tail{i}".encode()
        assert len(db.memtable) > 0  # the tail is volatile
        db.sync_wal()  # fsync: the tail becomes durable
        db.simulate_crash()
        recovered = Db.reopen(clock, device, config)
        for i in range(0, 2050, 13):
            assert recovered.get(key(i)) == expected[i], i
        assert recovered.get(key(2049)) == expected[2049]

    def test_recover_deletes(self):
        db, device, clock, config = make_db()
        for i in range(500):
            db.put(key(i), b"v")
        db.delete(key(100))
        db.sync_wal()
        db.simulate_crash()
        recovered = Db.reopen(clock, device, config)
        assert recovered.get(key(100)) is None
        assert recovered.get(key(101)) == b"v"

    def test_recover_empty_wal(self):
        db, device, clock, config = make_db()
        for i in range(200):
            db.put(key(i), b"v")
        db.flush_memtable()  # WAL now empty
        db.simulate_crash()
        recovered = Db.reopen(clock, device, config)
        assert recovered.get(key(5)) == b"v"

    def test_reopen_fresh_device_is_empty(self):
        """Crash before the first flush: only the WAL exists (or nothing)."""
        clock = SimClock()
        device = HddDevice(clock, HddConfig(capacity_bytes=16 * MIB))
        recovered = Db.reopen(clock, device)
        assert recovered.get(key(1)) is None
        recovered.put(key(1), b"v")
        assert recovered.get(key(1)) == b"v"

    def test_recovered_db_keeps_working(self):
        db, device, clock, config = make_db()
        for i in range(300):
            db.put(key(i), b"old")
        db.sync_wal()
        db.simulate_crash()
        recovered = Db.reopen(clock, device, config)
        for i in range(300, 600):
            recovered.put(key(i), b"new")
        assert recovered.get(key(0)) == b"old"
        assert recovered.get(key(599)) == b"new"

    def test_crash_loses_nothing_durable(self):
        """Property-style: random ops, crash at a random point, recover."""
        rng = random.Random(41)
        db, device, clock, config = make_db()
        model = {}
        for step in range(1500):
            i = rng.randrange(400)
            if rng.random() < 0.8:
                value = f"v{step}".encode()
                db.put(key(i), value)
                model[i] = value
            else:
                db.delete(key(i))
                model.pop(i, None)
        db.sync_wal()
        db.simulate_crash()
        recovered = Db.reopen(clock, device, config)
        for i in range(400):
            assert recovered.get(key(i)) == model.get(i), i


class TestScan:
    def test_merge_precedence(self):
        newer = iter([(b"a", b"\x01new"), (b"c", b"\x01c")])
        older = iter([(b"a", b"\x01old"), (b"b", b"\x01b")])
        merged = dict(merge_sources([newer, older]))
        assert merged[b"a"] == b"\x01new"
        assert set(merged) == {b"a", b"b", b"c"}

    def test_scan_range_suppresses_tombstones(self):
        source = iter([(b"a", b"\x01A"), (b"b", TOMBSTONE), (b"c", b"\x01C")])
        out = list(scan_range([source]))
        assert out == [(b"a", b"A"), (b"c", b"C")]

    def test_db_scan_ordered_and_complete(self):
        db, *_ = make_db()
        inserted = {}
        rng = random.Random(3)
        for _ in range(800):
            i = rng.randrange(1000)
            db.put(key(i), f"val{i}".encode())
            inserted[key(i)] = f"val{i}".encode()
        items = list(db.items())
        assert [k for k, _ in items] == sorted(inserted)
        assert dict(items) == inserted

    def test_db_scan_range_bounds(self):
        db, *_ = make_db()
        for i in range(100):
            db.put(key(i), b"v")
        db.flush_memtable()
        out = [k for k, _ in db.scan(start=key(10), end=key(20))]
        assert out == [key(i) for i in range(10, 20)]

    def test_unsynced_tail_may_be_lost(self):
        """Without sync_wal, buffered records vanish on crash — the
        authentic no-fsync contract."""
        db, device, clock, config = make_db()
        for i in range(100):
            db.put(key(i), b"v")
        db.sync_wal()
        db.put(key(999999), b"unsynced")
        db.simulate_crash()
        recovered = Db.reopen(clock, device, config)
        assert recovered.get(key(0)) == b"v"
        assert recovered.get(key(999999)) is None

    def test_scan_sees_deletes(self):
        db, *_ = make_db()
        for i in range(50):
            db.put(key(i), b"v")
        db.flush_memtable()
        db.delete(key(25))
        keys = [k for k, _ in db.items()]
        assert key(25) not in keys
        assert len(keys) == 49
