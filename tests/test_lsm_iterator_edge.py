"""Edge cases for the LSM merge iterator and scans across levels."""


from repro.lsm.compaction import TOMBSTONE
from repro.lsm.iterator import merge_sources, scan_range


class TestMergeSources:
    def test_empty_sources(self):
        assert list(merge_sources([])) == []
        assert list(merge_sources([iter([]), iter([])])) == []

    def test_single_source_passthrough(self):
        entries = [(b"a", b"1"), (b"b", b"2")]
        assert list(merge_sources([iter(entries)])) == entries

    def test_three_way_precedence(self):
        s0 = iter([(b"k", b"newest")])
        s1 = iter([(b"k", b"middle")])
        s2 = iter([(b"k", b"oldest"), (b"z", b"tail")])
        merged = dict(merge_sources([s0, s1, s2]))
        assert merged == {b"k": b"newest", b"z": b"tail"}

    def test_interleaved_keys_stay_sorted(self):
        s0 = iter([(b"b", b"0b"), (b"d", b"0d")])
        s1 = iter([(b"a", b"1a"), (b"c", b"1c"), (b"e", b"1e")])
        keys = [k for k, _ in merge_sources([s0, s1])]
        assert keys == [b"a", b"b", b"c", b"d", b"e"]

    def test_duplicate_in_same_priority_keeps_first(self):
        # Within one source keys are unique by construction, but across
        # equal-priority duplicates the first popped wins deterministically.
        s0 = iter([(b"k", b"first")])
        s1 = iter([(b"k", b"second")])
        merged = dict(merge_sources([s0, s1]))
        assert merged[b"k"] == b"first"


class TestScanRange:
    SOURCE = [
        (b"a", b"\x01A"),
        (b"b", TOMBSTONE),
        (b"c", b"\x01C"),
        (b"d", b"\x01D"),
    ]

    def test_full_range(self):
        out = list(scan_range([iter(self.SOURCE)]))
        assert out == [(b"a", b"A"), (b"c", b"C"), (b"d", b"D")]

    def test_start_bound_inclusive(self):
        out = list(scan_range([iter(self.SOURCE)], start=b"c"))
        assert out == [(b"c", b"C"), (b"d", b"D")]

    def test_end_bound_exclusive(self):
        out = list(scan_range([iter(self.SOURCE)], end=b"d"))
        assert out == [(b"a", b"A"), (b"c", b"C")]

    def test_tombstone_shadows_older_value(self):
        newer = iter([(b"c", TOMBSTONE)])
        older = iter([(b"c", b"\x01old"), (b"x", b"\x01X")])
        out = list(scan_range([newer, older]))
        assert out == [(b"x", b"X")]

    def test_include_tombstones(self):
        out = list(scan_range([iter(self.SOURCE)], include_tombstones=True))
        assert (b"b", b"") in out

    def test_empty_window(self):
        out = list(scan_range([iter(self.SOURCE)], start=b"x", end=b"y"))
        assert out == []
