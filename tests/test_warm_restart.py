"""Warm-restart tests: cache index persistence and ZTL state snapshots."""

import random

import pytest

from repro.cache import CacheConfig, HybridCache
from repro.cache.backends import BlockRegionStore, ZtlRegionStore
from repro.errors import CacheConfigError
from repro.flash import BlockSsd, BlockSsdConfig, FtlConfig, NandGeometry, ZnsConfig, ZnsSsd
from repro.sim import SimClock
from repro.units import KIB
from repro.ztl import GcConfig, RegionTranslationLayer, ZtlConfig

REGION = 16 * KIB


def make_block_cache():
    clock = SimClock()
    geometry = NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=128)
    device = BlockSsd(clock, BlockSsdConfig(geometry=geometry, ftl=FtlConfig(0.25)))
    store = BlockRegionStore(device, REGION, 16)
    config = CacheConfig(region_size=REGION, num_regions=16, ram_bytes=8 * KIB)
    return HybridCache(clock, store, config), clock, store, config


def make_ztl_stack():
    clock = SimClock()
    geometry = NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=256)
    zns = ZnsSsd(clock, ZnsConfig(geometry=geometry, zone_size=4 * geometry.block_size))
    layer = RegionTranslationLayer(
        zns, ZtlConfig(region_size=REGION, gc=GcConfig(min_empty_zones=2))
    )
    store = ZtlRegionStore(layer, 160)
    config = CacheConfig(region_size=REGION, num_regions=160, ram_bytes=8 * KIB)
    return HybridCache(clock, store, config), clock, store, config, layer


class TestCacheWarmRestart:
    def test_flash_contents_survive(self):
        cache, clock, store, config = make_block_cache()
        for i in range(60):
            cache.set(f"key{i:04d}".encode(), f"value{i}".encode() * 20)
        state = cache.shutdown()
        revived = HybridCache.warm_restart(clock, store, config, state)
        hits = 0
        for i in range(60):
            value = revived.get(f"key{i:04d}".encode())
            if value is not None:
                assert value == f"value{i}".encode() * 20
                hits += 1
        assert hits > 0  # flash-resident items are back

    def test_ram_is_cold_after_restart(self):
        cache, clock, store, config = make_block_cache()
        cache.set(b"k", b"v")
        state = cache.shutdown()
        revived = HybridCache.warm_restart(clock, store, config, state)
        assert len(revived.ram) == 0
        assert revived.get(b"k") == b"v"  # served from flash

    def test_eviction_order_preserved(self):
        cache, clock, store, config = make_block_cache()
        for i in range(200):  # forces several evictions pre-shutdown
            cache.set(f"key{i:04d}".encode(), b"x" * 1200)
        state = cache.shutdown()
        revived = HybridCache.warm_restart(clock, store, config, state)
        # Continue running: the revived cache must evict without errors
        # and keep returning correct data.
        for i in range(200, 400):
            revived.set(f"key{i:04d}".encode(), b"y" * 1200)
        revived.ram.clear()
        latest = revived.get(b"key0399")
        assert latest == b"y" * 1200

    def test_ttl_survives_restart(self):
        cache, clock, store, config = make_block_cache()
        cache.set(b"short", b"v", ttl_seconds=0.5)
        cache.set(b"long", b"v")
        state = cache.shutdown()
        revived = HybridCache.warm_restart(clock, store, config, state)
        clock.advance(int(1e9))
        assert revived.get(b"short") is None
        assert revived.get(b"long") == b"v"

    def test_mismatched_config_rejected(self):
        cache, clock, store, config = make_block_cache()
        state = cache.shutdown()
        bad = CacheConfig(region_size=REGION, num_regions=8, ram_bytes=8 * KIB)
        with pytest.raises(CacheConfigError):
            HybridCache.warm_restart(clock, store, bad, state)


class TestZtlStatePersistence:
    def test_snapshot_roundtrip_preserves_reads(self):
        cache, clock, store, config, layer = make_ztl_stack()
        rng = random.Random(5)
        for step in range(600):
            region = rng.randrange(120)
            cache.set(f"key{region:05d}".encode(), bytes([step % 251]) * 1000)
        cache.flush()
        state = layer.to_state()
        layer.restore_state(state)
        cache.ram.clear()
        # Every indexed key must still read correctly through the
        # restored mapping.
        for region in range(120):
            key = f"key{region:05d}".encode()
            if cache.contains(key):
                assert cache.get(key) is not None

    def test_restore_rejects_wrong_geometry(self):
        _, clock, _, _, layer = make_ztl_stack()
        state = layer.to_state()
        state["region_size"] = 999
        with pytest.raises(ValueError):
            layer.restore_state(state)

    def test_restored_layer_keeps_collecting(self):
        cache, clock, store, config, layer = make_ztl_stack()
        rng = random.Random(7)
        for step in range(400):
            cache.set(f"key{rng.randrange(120):05d}".encode(), b"x" * 1000)
        cache.flush()
        layer.restore_state(layer.to_state())
        # Churn hard enough to require GC after the restore.
        for step in range(1500):
            cache.set(f"key{rng.randrange(120):05d}".encode(), b"y" * 1000)
        assert layer.device.stats.write_amplification == 1.0


# --- crash recovery under power cuts ---------------------------------------------

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.errors import PowerCutError
from repro.sim import FaultInjector


def make_crash_cache(power_cut_at_ns):
    """Block-Cache with checksummed regions and a scheduled power cut."""
    clock = SimClock()
    geometry = NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=128)
    faults = FaultInjector(seed=3, power_cut_at_ns=power_cut_at_ns)
    device = BlockSsd(
        clock, BlockSsdConfig(geometry=geometry, ftl=FtlConfig(0.25)), faults=faults
    )
    store = BlockRegionStore(device, REGION, 16)
    config = CacheConfig(
        region_size=REGION, num_regions=16, ram_bytes=8 * KIB, checksums=True
    )
    return HybridCache(clock, store, config), clock, store, config, faults


def overwrite_until_cut(cache, ops=9000, keys=80):
    """Hot overwrite loop (puts only — no deletes, so the value history of
    a key is unambiguous).  Returns (history, cut_happened)."""
    history = {}
    try:
        for i in range(ops):
            key = f"key{i % keys:04d}".encode()
            value = f"value{i}".encode() * 20
            cache.set(key, value)
            history.setdefault(key, []).append(value)
    except PowerCutError:
        return history, True
    return history, False


class TestCrashRecovery:
    """The recovery oracle.

    After a power cut at an arbitrary instant, a recovered get must

    * never serve a torn entry — anything served is byte-identical to
      *some* value the workload wrote for that key, and
    * never serve a value older than the newest fully-persisted one: a
      key whose pre-crash index entry pointed at a *sealed* region (the
      journal's last record for it is "seal") must come back at exactly
      its latest written value.

    Keys resident in the open buffer — or in the region whose flush the
    cut tore — may legitimately come back older or missing: their newest
    value never became durable.
    """

    def crash_and_check(self, cut_ns, ops=9000):
        cache, clock, store, config, faults = make_crash_cache(cut_ns)
        history, cut = overwrite_until_cut(cache, ops=ops)
        assert cut, "power cut never fired; workload too short for cut_ns"

        journal = list(cache.seal_journal)
        last_event = {}
        for event, region_id, seq, salt in journal:
            last_event[region_id] = event
        sealed = {rid for rid, event in last_event.items() if event == "seal"}
        old_index = {key: cache.index.get(key) for key in history}

        faults.restore_power()
        recovered = HybridCache.crash_recover(clock, store, config, journal)

        served = 0
        for key, versions in history.items():
            got = recovered.get(key)
            location = old_index.get(key)
            if got is not None:
                served += 1
                assert got in versions, f"torn/corrupt value served for {key!r}"
            if location is not None and location.region_id in sealed:
                assert got == versions[-1], (
                    f"sealed-resident {key!r} lost its newest persisted value"
                )
        return recovered, faults, served

    def test_torn_flush_dropped_deterministically(self):
        # Seed 3 + 40 ms lands the cut inside a region flush: the torn
        # tail must be detected by the salted checksums and dropped.
        recovered, faults, served = self.crash_and_check(40_000_000)
        assert faults.stats.torn_writes == 1
        assert faults.stats.torn_bytes_dropped > 0
        assert recovered.stats.torn_items_dropped >= 1
        assert recovered.stats.recovered_items > 0
        assert recovered.stats.recovery_ns > 0
        assert served > 0
        # The revived cache keeps working: new sets and flushes succeed.
        for i in range(300):
            recovered.set(f"new{i:04d}".encode(), b"fresh" * 40)
        recovered.ram.clear()
        assert recovered.get(b"new0299") == b"fresh" * 40

    def test_recovery_is_deterministic(self):
        def run():
            recovered, faults, served = self.crash_and_check(40_000_000)
            return (
                served,
                recovered.stats.recovered_items,
                recovered.stats.torn_items_dropped,
                recovered.stats.recovery_ns,
                sorted(recovered.index.keys()),
            )

        assert run() == run()

    @settings(
        max_examples=8,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(cut_ms=st.integers(2, 50))
    def test_power_cut_anywhere_is_safe(self, cut_ms):
        self.crash_and_check(cut_ms * 1_000_000)


class TestReplicatedCrashRecovery:
    """The crash-consistency oracle, extended to the replicated fleet.

    A scripted shard power cut mid-serving exercises the full path:
    queued work dies with the DRAM, ``crash_recover`` replays the seal
    journal, and hinted writes replay through the normal write path.
    The single-cache oracle's promises must survive the extra machinery:
    nothing served anywhere in the fleet may be torn (every byte string
    must be some value an acknowledged write produced), and the whole
    recovery must be deterministic.
    """

    def _replicated_crash_run(self):
        from repro.bench.schemes import SchemeScale
        from repro.serve import (
            CacheCluster,
            FailoverPlan,
            ReplicationConfig,
            Server,
            ServerConfig,
            ShardKill,
            TenantConfig,
        )
        from repro.units import MSEC
        from repro.workloads import CacheBenchConfig

        scale = SchemeScale(
            zone_size=256 * KIB,
            region_size=REGION,
            pages_per_block=16,
            ram_bytes=32 * KIB,
        )
        cluster = CacheCluster.homogeneous(
            "Region-Cache",
            2,
            8 * scale.zone_size,
            6 * scale.zone_size,
            scale=scale,
            cache_overrides=(("eviction_policy", "fifo"),),
            replication=ReplicationConfig(replicas=2, track_writes=True),
        )
        tenants = [
            TenantConfig(
                "writer",
                rate_ops_per_sec=40_000.0,
                workload=CacheBenchConfig(
                    num_ops=800,
                    num_keys=250,
                    get_ratio=0.4,
                    set_ratio=0.5,
                    delete_ratio=0.1,
                    set_on_miss=True,
                    seed=11,
                ),
                seed=33,
            )
        ]
        server = Server(
            cluster,
            tenants,
            ServerConfig(64),
            failover=FailoverPlan((ShardKill(4 * MSEC, 0, 4 * MSEC),)),
        )
        report = server.run()
        return cluster, server, report

    def test_no_torn_values_anywhere_after_replay(self):
        cluster, server, report = self._replicated_crash_run()
        assert report.fleet_row["kills"] == 1
        assert report.fleet_row["handoff_writes"] > 0
        killed = cluster.shards[0]
        assert killed.alive and killed.health == "up"
        served = 0
        for key, history in server.write_ledger.items():
            versions = {value for _, value in history}
            for shard in cluster.shards:
                got = shard.stack.cache.get(key)
                if got is not None:
                    served += 1
                    assert got in versions, (
                        f"torn/corrupt value served for {key!r}"
                    )
        assert served > 0

    def test_replicated_recovery_is_deterministic(self):
        def run():
            cluster, server, report = self._replicated_crash_run()
            ledger_shape = sorted(
                (key, len(history))
                for key, history in server.write_ledger.items()
            )
            return (
                report.fleet_row,
                report.tenant_rows,
                cluster.shards[0].health_log,
                ledger_shape,
            )

        assert run() == run()
