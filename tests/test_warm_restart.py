"""Warm-restart tests: cache index persistence and ZTL state snapshots."""

import random

import pytest

from repro.cache import CacheConfig, HybridCache
from repro.cache.backends import BlockRegionStore, ZtlRegionStore
from repro.errors import CacheConfigError
from repro.flash import BlockSsd, BlockSsdConfig, FtlConfig, NandGeometry, ZnsConfig, ZnsSsd
from repro.sim import SimClock
from repro.units import KIB
from repro.ztl import GcConfig, RegionTranslationLayer, ZtlConfig

REGION = 16 * KIB


def make_block_cache():
    clock = SimClock()
    geometry = NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=128)
    device = BlockSsd(clock, BlockSsdConfig(geometry=geometry, ftl=FtlConfig(0.25)))
    store = BlockRegionStore(device, REGION, 16)
    config = CacheConfig(region_size=REGION, num_regions=16, ram_bytes=8 * KIB)
    return HybridCache(clock, store, config), clock, store, config


def make_ztl_stack():
    clock = SimClock()
    geometry = NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=256)
    zns = ZnsSsd(clock, ZnsConfig(geometry=geometry, zone_size=4 * geometry.block_size))
    layer = RegionTranslationLayer(
        zns, ZtlConfig(region_size=REGION, gc=GcConfig(min_empty_zones=2))
    )
    store = ZtlRegionStore(layer, 160)
    config = CacheConfig(region_size=REGION, num_regions=160, ram_bytes=8 * KIB)
    return HybridCache(clock, store, config), clock, store, config, layer


class TestCacheWarmRestart:
    def test_flash_contents_survive(self):
        cache, clock, store, config = make_block_cache()
        for i in range(60):
            cache.set(f"key{i:04d}".encode(), f"value{i}".encode() * 20)
        state = cache.shutdown()
        revived = HybridCache.warm_restart(clock, store, config, state)
        hits = 0
        for i in range(60):
            value = revived.get(f"key{i:04d}".encode())
            if value is not None:
                assert value == f"value{i}".encode() * 20
                hits += 1
        assert hits > 0  # flash-resident items are back

    def test_ram_is_cold_after_restart(self):
        cache, clock, store, config = make_block_cache()
        cache.set(b"k", b"v")
        state = cache.shutdown()
        revived = HybridCache.warm_restart(clock, store, config, state)
        assert len(revived.ram) == 0
        assert revived.get(b"k") == b"v"  # served from flash

    def test_eviction_order_preserved(self):
        cache, clock, store, config = make_block_cache()
        for i in range(200):  # forces several evictions pre-shutdown
            cache.set(f"key{i:04d}".encode(), b"x" * 1200)
        state = cache.shutdown()
        revived = HybridCache.warm_restart(clock, store, config, state)
        # Continue running: the revived cache must evict without errors
        # and keep returning correct data.
        for i in range(200, 400):
            revived.set(f"key{i:04d}".encode(), b"y" * 1200)
        revived.ram.clear()
        latest = revived.get(b"key0399")
        assert latest == b"y" * 1200

    def test_ttl_survives_restart(self):
        cache, clock, store, config = make_block_cache()
        cache.set(b"short", b"v", ttl_seconds=0.5)
        cache.set(b"long", b"v")
        state = cache.shutdown()
        revived = HybridCache.warm_restart(clock, store, config, state)
        clock.advance(int(1e9))
        assert revived.get(b"short") is None
        assert revived.get(b"long") == b"v"

    def test_mismatched_config_rejected(self):
        cache, clock, store, config = make_block_cache()
        state = cache.shutdown()
        bad = CacheConfig(region_size=REGION, num_regions=8, ram_bytes=8 * KIB)
        with pytest.raises(CacheConfigError):
            HybridCache.warm_restart(clock, store, bad, state)


class TestZtlStatePersistence:
    def test_snapshot_roundtrip_preserves_reads(self):
        cache, clock, store, config, layer = make_ztl_stack()
        rng = random.Random(5)
        for step in range(600):
            region = rng.randrange(120)
            cache.set(f"key{region:05d}".encode(), bytes([step % 251]) * 1000)
        cache.flush()
        state = layer.to_state()
        layer.restore_state(state)
        cache.ram.clear()
        # Every indexed key must still read correctly through the
        # restored mapping.
        for region in range(120):
            key = f"key{region:05d}".encode()
            if cache.contains(key):
                assert cache.get(key) is not None

    def test_restore_rejects_wrong_geometry(self):
        _, clock, _, _, layer = make_ztl_stack()
        state = layer.to_state()
        state["region_size"] = 999
        with pytest.raises(ValueError):
            layer.restore_state(state)

    def test_restored_layer_keeps_collecting(self):
        cache, clock, store, config, layer = make_ztl_stack()
        rng = random.Random(7)
        for step in range(400):
            cache.set(f"key{rng.randrange(120):05d}".encode(), b"x" * 1000)
        cache.flush()
        layer.restore_state(layer.to_state())
        # Churn hard enough to require GC after the restore.
        for step in range(1500):
            cache.set(f"key{rng.randrange(120):05d}".encode(), b"y" * 1000)
        assert layer.device.stats.write_amplification == 1.0
