"""Integration tests for the LSM database, compaction, and the
secondary-cache coupling."""

import random

import pytest

from repro.bench.schemes import SchemeScale, build_region_cache, build_zone_cache
from repro.errors import DbClosedError
from repro.flash import HddConfig, HddDevice
from repro.lsm import CacheLibSecondaryCache, Db, DbConfig
from repro.lsm.compaction import CompactionConfig
from repro.sim import SimClock
from repro.units import KIB, MIB


def make_db(clock=None, secondary=None, memtable_kib=64, block_cache_kib=32):
    clock = clock or SimClock()
    hdd = HddDevice(clock, HddConfig(capacity_bytes=64 * MIB))
    config = DbConfig(
        memtable_bytes=memtable_kib * KIB,
        block_cache_bytes=block_cache_kib * KIB,
        wal_bytes=256 * KIB,
        compaction=CompactionConfig(
            l0_trigger=3, l1_target_bytes=512 * KIB, max_table_bytes=128 * KIB
        ),
    )
    return Db(clock, hdd, config, secondary_cache=secondary), clock


def key(i: int) -> bytes:
    return f"user{i:010d}".encode()


class TestDbBasics:
    def test_put_get(self):
        db, _ = make_db()
        db.put(key(1), b"value1")
        assert db.get(key(1)) == b"value1"

    def test_get_missing(self):
        db, _ = make_db()
        assert db.get(key(404)) is None

    def test_overwrite(self):
        db, _ = make_db()
        db.put(key(1), b"old")
        db.put(key(1), b"new")
        assert db.get(key(1)) == b"new"

    def test_delete_shadows(self):
        db, _ = make_db()
        db.put(key(1), b"v")
        db.flush_memtable()
        db.delete(key(1))
        assert db.get(key(1)) is None
        db.flush_memtable()
        assert db.get(key(1)) is None

    def test_get_after_flush(self):
        db, _ = make_db()
        for i in range(100):
            db.put(key(i), f"value{i}".encode())
        db.flush_memtable()
        for i in range(100):
            assert db.get(key(i)) == f"value{i}".encode()

    def test_closed_db_rejects_ops(self):
        db, _ = make_db()
        db.put(key(1), b"v")
        db.close()
        with pytest.raises(DbClosedError):
            db.get(key(1))
        with pytest.raises(DbClosedError):
            db.put(key(2), b"v")

    def test_clock_advances(self):
        db, clock = make_db()
        before = clock.now
        db.put(key(1), b"v")
        db.get(key(1))
        assert clock.now > before


class TestDbCompaction:
    def fill(self, db, count=4000, value_size=64, seed=3):
        rng = random.Random(seed)
        order = list(range(count))
        rng.shuffle(order)
        expected = {}
        for i in order:
            value = f"val{i:06d}".encode() * (value_size // 9 + 1)
            db.put(key(i), value[:value_size])
            expected[i] = value[:value_size]
        db.flush_memtable()
        return expected

    def test_compaction_triggered(self):
        db, _ = make_db()
        self.fill(db)
        assert db.compactor.compactions_run > 0
        # L0 kept under control.
        assert len(db.version.levels[0]) < db.config.compaction.l0_trigger

    def test_all_keys_survive_compaction(self):
        db, _ = make_db()
        expected = self.fill(db)
        for i, value in list(expected.items())[::7]:
            assert db.get(key(i)) == value, i

    def test_overwrites_resolve_to_newest(self):
        db, _ = make_db()
        self.fill(db, count=2000)
        for i in range(0, 2000, 3):
            db.put(key(i), b"NEWEST" + key(i))
        db.flush_memtable()
        db.compactor.maybe_compact()
        for i in range(0, 2000, 37):
            expected = b"NEWEST" + key(i) if i % 3 == 0 else None
            if expected is not None:
                assert db.get(key(i)) == expected

    def test_deletes_survive_compaction(self):
        db, _ = make_db()
        self.fill(db, count=2000)
        for i in range(0, 2000, 5):
            db.delete(key(i))
        db.flush_memtable()
        db.compactor.maybe_compact()
        for i in range(0, 2000, 35):
            if i % 5 == 0:
                assert db.get(key(i)) is None

    def test_extents_released(self):
        db, _ = make_db()
        self.fill(db)
        live_tables = db.version.table_count()
        # Allocated extents = live tables + the WAL and manifest extents.
        assert db.space.allocated_extents == live_tables + 2


class TestSecondaryCacheCoupling:
    SCALE = SchemeScale(
        zone_size=256 * KIB, region_size=16 * KIB, pages_per_block=16,
        ram_bytes=16 * KIB,
    )

    def make_with_secondary(self):
        clock = SimClock()
        stack = build_region_cache(
            clock, self.SCALE, 8 * 256 * KIB, 6 * 256 * KIB
        )
        secondary = CacheLibSecondaryCache(stack.cache)
        db, _ = make_db(clock=clock, secondary=secondary, block_cache_kib=16)
        return db, secondary, stack

    def test_spill_and_fill(self):
        db, secondary, _ = self.make_with_secondary()
        rng = random.Random(5)
        for i in range(3000):
            db.put(key(i), f"value{i}".encode())
        db.flush_memtable()
        for _ in range(800):
            db.get(key(rng.randrange(3000)))
        assert secondary.inserts > 0
        assert secondary.lookups > 0
        # Repeated reads of the same keys eventually hit the flash tier.
        assert db.block_cache.secondary_lookups.hits > 0

    def test_secondary_hits_faster_than_hdd(self):
        db, secondary, stack = self.make_with_secondary()
        for i in range(3000):
            db.put(key(i), f"value{i}".encode())
        db.flush_memtable()
        rng = random.Random(7)
        for _ in range(2000):
            db.get(key(rng.randrange(3000)))
        db.stats.get_latency.reset()
        # A hot key served from flash must be far cheaper than ~ms HDD.
        hot = key(100)
        db.get(hot)
        db.block_cache._items.clear()  # force out of DRAM
        db.get(hot)
        assert db.stats.get_latency.max() < 2_000_000  # < 2 ms

    def test_zone_cache_also_works_as_secondary(self):
        clock = SimClock()
        stack = build_zone_cache(clock, self.SCALE, 6 * 256 * KIB)
        secondary = CacheLibSecondaryCache(stack.cache)
        db, _ = make_db(clock=clock, secondary=secondary, block_cache_kib=16)
        for i in range(2000):
            db.put(key(i), f"value{i}".encode())
        db.flush_memtable()
        rng = random.Random(9)
        for _ in range(600):
            assert db.get(key(rng.randrange(2000))) is not None
        assert stack.cache.waf().total == 1.0
