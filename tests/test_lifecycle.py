"""Tests for the tenant item-lifecycle layer (repro.cache.lifecycle).

Covers the versioned-key codec, the namespace generation counters, the
liveness ledger, and the engine integration: stale-generation read
refusal, invalidated-byte accounting, §3.4 migration hints, dead-first
eviction, the TTL sweep at region rotation, and the crash-recovery
oracle (no read ever serves a pre-bump generation, including after
``crash_recover`` rebuilt the index from the journal).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.schemes import SchemeScale, build_region_cache
from repro.cache import HybridCache
from repro.cache.lifecycle import (
    DEAD_REASONS,
    ItemLifecycle,
    LifecycleConfig,
    LivenessLedger,
    NamespaceVersions,
    split_versioned,
    tenant_token,
    versioned_prefix,
)
from repro.errors import CacheConfigError
from repro.sim import SimClock
from repro.units import KIB

SCALE = SchemeScale(
    zone_size=256 * KIB, region_size=16 * KIB, pages_per_block=16,
    ram_bytes=32 * KIB,
)


def make_stack(**lifecycle_kwargs):
    lifecycle = LifecycleConfig(**lifecycle_kwargs)
    return build_region_cache(
        SimClock(), SCALE, 16 * 256 * KIB, 12 * 256 * KIB,
        lifecycle=lifecycle,
    )


class TestVersionedKeyCodec:
    def test_prefix_round_trips(self):
        prefix = versioned_prefix(b"web", 7)
        assert prefix == b"web:7:"
        assert split_versioned(prefix + b"user:42") == (b"web", 7)

    def test_unversioned_keys_parse_as_none(self):
        assert split_versioned(b"plain") is None
        assert split_versioned(b":starts-with-colon") is None
        assert split_versioned(b"web:notdigits:k") is None
        assert split_versioned(b"web::k") is None
        assert split_versioned(b"web:12") is None

    def test_tenant_token_is_stable(self):
        assert tenant_token(b"web") == tenant_token(b"web")
        assert tenant_token(b"web") != tenant_token(b"purge")


class TestNamespaceVersions:
    def test_bump_advances_and_classifies(self):
        ns = NamespaceVersions()
        assert ns.generation(b"web") == 0
        assert ns.is_current(versioned_prefix(b"web", 0) + b"k")
        assert ns.bump(b"web") == 1
        assert not ns.is_current(versioned_prefix(b"web", 0) + b"k")
        assert ns.is_current(versioned_prefix(b"web", 1) + b"k")
        # Unversioned keys always classify current.
        assert ns.is_current(b"plain-key")

    def test_explicit_generation_never_moves_backward(self):
        ns = NamespaceVersions()
        assert ns.bump(b"web", 5) == 5
        assert ns.bump(b"web", 3) == 5  # replayed stale bump: no-op
        assert ns.bump(b"web") == 6

    def test_restore_by_token(self):
        ns = NamespaceVersions()
        ns.restore(tenant_token(b"web"), 4)
        assert ns.generation(b"web") == 4
        ns.restore(tenant_token(b"web"), 2)  # never backward
        assert ns.generation(b"web") == 4

    def test_snapshot_round_trip(self):
        ns = NamespaceVersions()
        ns.bump(b"web", 3)
        ns.bump(b"purge", 1)
        revived = NamespaceVersions()
        revived.restore_snapshot(ns.snapshot())
        assert revived.tokens() == ns.tokens()


class TestLivenessLedger:
    def test_reasons_accumulate_uniformly(self):
        ledger = LivenessLedger()
        ledger.note_dead(100, "expired")
        ledger.note_dead(50, "expired")
        ledger.note_dead(10, "invalidated", items=3)
        assert ledger.dead_bytes["expired"] == 150
        assert ledger.dead_items["expired"] == 2
        assert ledger.dead_items["invalidated"] == 3
        assert ledger.total_dead_bytes == 160

    def test_snapshot_covers_every_reason(self):
        snapshot = LivenessLedger().snapshot()
        for reason in DEAD_REASONS:
            assert f"dead_bytes_{reason}" in snapshot
            assert f"dead_items_{reason}" in snapshot
        assert "dead_generation_regions" in snapshot
        assert "dead_first_evictions" in snapshot


class TestLifecycleConfig:
    def test_defaults_are_off(self):
        config = LifecycleConfig()
        assert not config.versioning
        assert not config.dead_first_eviction
        assert not config.gc_hints

    def test_hashable_for_cache_overrides(self):
        # The bench pipeline passes configs through hashable override
        # tuples, so the frozen dataclass must hash.
        assert hash(LifecycleConfig()) == hash(LifecycleConfig())

    def test_hint_position_validated(self):
        with pytest.raises(CacheConfigError):
            LifecycleConfig(hint_drop_position=1.5)


class TestEngineVersioning:
    def test_stale_generation_read_refused(self):
        stack = make_stack(versioning=True)
        cache = stack.cache
        old = versioned_prefix(b"web", 0) + b"k"
        cache.set(old, b"v")
        assert cache.get(old) == b"v"
        assert cache.invalidate_namespace(b"web") == 1
        assert cache.get(old) is None
        # The refusal holds for flash-resident bytes too.
        fresh = versioned_prefix(b"web", 1) + b"k"
        cache.set(fresh, b"v2")
        cache.flush()
        cache.ram.clear()
        assert cache.get(old) is None
        assert cache.get(fresh) == b"v2"

    def test_invalidated_bytes_hit_the_ledger(self):
        stack = make_stack(versioning=True)
        cache = stack.cache
        key = versioned_prefix(b"web", 0) + b"k"
        cache.set(key, b"v" * 64)
        cache.flush()
        cache.invalidate_namespace(b"web")
        cache.ram.clear()
        assert cache.get(key) is None
        assert cache.regions.ledger.dead_bytes["invalidated"] > 0
        assert cache.regions.ledger.dead_items["invalidated"] == 1

    def test_bump_survives_crash_recovery(self):
        stack = make_stack(versioning=True)
        cache, clock = stack.cache, stack.clock
        old = versioned_prefix(b"web", 0) + b"k"
        cache.set(old, b"v")
        cache.flush()
        cache.invalidate_namespace(b"web")
        recovered = HybridCache.crash_recover(
            clock, cache.store, cache.config, list(cache.seal_journal)
        )
        assert recovered.lifecycle.namespaces.generation(b"web") == 1
        assert recovered.get(old) is None
        # The rebuilt journal re-records the bump: a second crash still
        # refuses pre-bump reads.
        twice = HybridCache.crash_recover(
            clock, cache.store, cache.config, list(recovered.seal_journal)
        )
        assert twice.get(old) is None

    def test_migration_worth_hint(self):
        stack = make_stack(versioning=True, gc_hints=True)
        cache = stack.cache
        key = versioned_prefix(b"web", 0) + b"k"
        cache.set(key, b"v" * 64)
        cache.flush()
        region_id = cache.index.get(key).region_id
        assert cache.migration_worth(region_id)
        cache.invalidate_namespace(b"web")
        # Every surviving key in the region is a dead generation now.
        assert not cache.migration_worth(region_id)
        assert not cache.migration_worth(10_000)  # unknown region

    def test_hint_drop_position_boundary_covers_full_range(self):
        # Regression: a strict `<` left the most-recently-sealed region
        # (eviction position exactly 1.0) outside a threshold of 1.0,
        # though the config documents [0, 1] as "drop everything".
        stack = make_stack(versioning=True, gc_hints=True,
                           hint_drop_position=1.0)
        cache = stack.cache
        old = versioned_prefix(b"web", 0) + b"old"
        new = versioned_prefix(b"web", 0) + b"new"
        cache.set(old, b"v" * 64)
        cache.flush()
        cache.set(new, b"w" * 64)
        cache.flush()
        region_id = cache.index.get(new).region_id
        assert cache.regions.eviction_position(region_id) == 1.0
        assert not cache.migration_worth(region_id)

    def test_hint_drop_position_spares_regions_above_threshold(self):
        stack = make_stack(versioning=True, gc_hints=True,
                           hint_drop_position=0.5)
        cache = stack.cache
        keys = [versioned_prefix(b"web", 0) + b"k%d" % i for i in range(3)]
        for key in keys:
            cache.set(key, b"v" * 64)
            cache.flush()
        positions = [
            cache.regions.eviction_position(cache.index.get(key).region_id)
            for key in keys
        ]
        assert positions == [0.0, 0.5, 1.0]
        # At or below the threshold drops; strictly above still copies.
        assert not cache.migration_worth(cache.index.get(keys[0]).region_id)
        assert not cache.migration_worth(cache.index.get(keys[1]).region_id)
        assert cache.migration_worth(cache.index.get(keys[2]).region_id)

    def test_on_region_dropped_purges_and_accounts(self):
        stack = make_stack(versioning=True, gc_hints=True)
        cache = stack.cache
        key = versioned_prefix(b"web", 0) + b"k"
        cache.set(key, b"v" * 64)
        cache.flush()
        region_id = cache.index.get(key).region_id
        cache.invalidate_namespace(b"web")
        cache.on_region_dropped(region_id)
        assert cache.index.get(key) is None
        assert cache.regions.ledger.dead_generation_regions == 1
        assert cache.regions.ledger.dead_items["invalidated"] == 1


class TestDeadFirstEviction:
    def test_fully_dead_region_taken_before_policy_order(self):
        # Small cache (32 regions) so writes actually reach eviction.
        lifecycle = LifecycleConfig(versioning=True, dead_first_eviction=True)
        stack = build_region_cache(
            SimClock(), SCALE, 16 * 256 * KIB, 2 * 256 * KIB,
            lifecycle=lifecycle,
        )
        cache = stack.cache
        # Fill several regions, then delete everything in the oldest
        # sealed region so it is fully dead.
        values = b"x" * (4 * KIB)
        for i in range(12):
            cache.set(b"fill%03d" % i, values)
        cache.flush()
        dead_region = next(iter(cache.regions._sealed))
        meta = cache.regions.meta(dead_region)
        for key in list(meta.keys):
            cache.delete(key)
        assert cache.regions.meta(dead_region).live_bytes == 0
        before = cache.regions.ledger.dead_first_evictions
        # Keep writing until an eviction happens; the dead region must
        # be the first victim even though FIFO order would pick another.
        for i in range(400):
            cache.set(b"more%03d" % i, values)
            if cache.regions.ledger.dead_first_evictions > before:
                break
        assert cache.regions.ledger.dead_first_evictions > before

    def test_eviction_position_reports_dead_regions_first(self):
        stack = make_stack(dead_first_eviction=True)
        cache = stack.cache
        for i in range(24):
            cache.set(b"fill%03d" % i, b"x" * 512)
        cache.flush()
        region_id = next(iter(cache.regions._sealed))
        for key in list(cache.regions.meta(region_id).keys):
            cache.delete(key)
        assert cache.regions.eviction_position(region_id) == 0.0


class TestTtlSweep:
    def test_expired_items_purged_at_rotation_without_access(self):
        """Regression: TTL purge used to be access-only — an expired key
        nobody re-read kept its index entry (and its bytes counted live)
        until eviction.  The sweep purges due items at region rotation.
        """
        stack = make_stack()
        cache, clock = stack.cache, stack.clock
        cache.set(b"short", b"v" * 64, ttl_seconds=0.05)
        cache.flush()
        clock.advance(int(1e9))
        # Never read b"short"; just force a rotation via new writes.
        for i in range(8):
            cache.set(b"fill%03d" % i, b"x" * (4 * KIB))
        assert not cache.contains(b"short")
        assert cache.regions.ledger.dead_bytes["expired"] > 0
        assert cache.regions.ledger.dead_items["expired"] >= 1

    def test_sweep_can_be_disabled(self):
        stack = make_stack(sweep_expired=False)
        cache, clock = stack.cache, stack.clock
        cache.set(b"short", b"v" * 64, ttl_seconds=0.05)
        cache.flush()
        clock.advance(int(1e9))
        for i in range(8):
            cache.set(b"fill%03d" % i, b"x" * (4 * KIB))
        # Without the sweep the expired item lingers until accessed.
        assert b"short" in cache.index
        assert cache.get(b"short") is None  # access-time purge still works
        assert not cache.contains(b"short")

    @settings(max_examples=100, deadline=None)
    @given(
        events=st.lists(
            st.one_of(
                st.tuples(st.just("set"),
                          st.sampled_from([b"a", b"b", b"c"]),
                          st.integers(min_value=1, max_value=50)),
                st.tuples(st.just("clear"),
                          st.sampled_from([b"a", b"b", b"c"]),
                          st.just(0)),
                st.tuples(st.just("sweep"), st.just(b""),
                          st.integers(min_value=0, max_value=25)),
            ),
            max_size=40,
        ),
    )
    def test_heap_never_serves_stale_deadlines(self, events):
        """Property for the lazy TTL min-heap: under any interleaving of
        overwrites (longer *or* shorter TTL), clears, and sweeps, ``due``
        yields exactly the keys whose *current* deadline elapsed — a
        stale heap entry left by an overwrite must neither resurrect a
        key early nor hide it at its real deadline."""
        lifecycle = ItemLifecycle(LifecycleConfig())
        model = {}  # key -> authoritative deadline
        now = 0
        for kind, key, arg in events:
            if kind == "set":
                lifecycle.note_ttl(key, now + arg)
                model[key] = now + arg
            elif kind == "clear":
                lifecycle.clear_ttl(key)
                model.pop(key, None)
            else:
                now += arg
                due = list(lifecycle.due(now))
                expected = {k for k, e in model.items() if e <= now}
                assert set(due) == expected
                for k in expected:  # the consumer purges what surfaced
                    lifecycle.clear_ttl(k)
                    del model[k]
        # Whatever remains surfaces exactly at the horizon, never before.
        horizon = max(model.values(), default=now)
        assert set(lifecycle.due(horizon)) == set(model)
        assert lifecycle.expiry.keys() == model.keys()


class TestInvalidationOracle:
    """Property: after ``invalidate_namespace(tenant)`` no read ever
    returns a pre-bump generation — across overwrites, flushes, and a
    journal-replay recovery."""

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["set", "bump", "flush", "delete"]),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=30,
        ),
        recover=st.booleans(),
    )
    def test_no_read_serves_pre_bump_generation(self, ops, recover):
        stack = make_stack(versioning=True)
        cache = stack.cache
        generation = 0
        written = []  # (key, gen) every versioned key ever written
        for op, i in ops:
            key = versioned_prefix(b"t", generation) + b"k%d" % i
            if op == "set":
                cache.set(key, b"v%d" % generation)
                written.append((key, generation))
            elif op == "bump":
                generation = cache.invalidate_namespace(b"t")
            elif op == "flush":
                cache.flush()
            elif op == "delete":
                cache.delete(key)
        if recover:
            cache.flush()
            cache = HybridCache.crash_recover(
                stack.clock, cache.store, cache.config,
                list(cache.seal_journal),
            )
        for key, gen in written:
            if gen < generation:
                assert cache.get(key) is None, (key, gen, generation)
