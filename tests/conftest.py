"""Shared fixtures for the test suite: small device geometries that keep
tests fast while still exercising multi-block / multi-zone behaviour."""

from __future__ import annotations

import pytest

from repro.flash import (
    BlockSsd,
    BlockSsdConfig,
    FtlConfig,
    NandGeometry,
    ZnsConfig,
    ZnsSsd,
)
from repro.sim import SimClock
from repro.units import KIB


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def small_geometry() -> NandGeometry:
    """64 blocks x 16 pages x 4 KiB = 4 MiB raw media."""
    return NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=64)


@pytest.fixture
def block_ssd(clock: SimClock, small_geometry: NandGeometry) -> BlockSsd:
    config = BlockSsdConfig(
        geometry=small_geometry,
        ftl=FtlConfig(op_ratio=0.25, gc_low_watermark=2, gc_high_watermark=4),
    )
    return BlockSsd(clock, config)


@pytest.fixture
def zns_ssd(clock: SimClock, small_geometry: NandGeometry) -> ZnsSsd:
    """16 zones of 4 NAND blocks (256 KiB) each."""
    config = ZnsConfig(
        geometry=small_geometry,
        zone_size=4 * small_geometry.block_size,
        max_open_zones=4,
        max_active_zones=6,
    )
    return ZnsSsd(clock, config)


def make_payload(length: int, tag: int) -> bytes:
    """Deterministic recognisable payload for read-back checks."""
    unit = bytes([tag % 256]) * 64
    reps = -(-length // len(unit))
    return (unit * reps)[:length]
