"""Integration tests for the F2FS-like filesystem on ZNS + nullblk."""

import random

import pytest

from repro.errors import (
    AlignmentError,
    FileExistsInFsError,
    FileNotFoundInFsError,
    NoSpaceError,
)
from repro.f2fs import CleanerConfig, F2fs, F2fsConfig, VictimPolicy
from repro.flash import NandGeometry, NullBlkDevice, ZnsConfig, ZnsSsd
from repro.sim import SimClock
from repro.units import KIB, MIB

BLOCK = 4 * KIB


def make_fs(
    num_blocks=512,
    zone_blocks=8,
    provision=0.20,
    policy=VictimPolicy.COST_BENEFIT,
    checkpoint_interval=10**6,
):
    clock = SimClock()
    geometry = NandGeometry(page_size=BLOCK, pages_per_block=16, num_blocks=num_blocks)
    zns = ZnsSsd(clock, ZnsConfig(geometry=geometry, zone_size=zone_blocks * geometry.block_size))
    meta = NullBlkDevice(clock, capacity_bytes=8 * MIB)
    fs = F2fs(
        clock,
        zns,
        meta,
        F2fsConfig(provision_ratio=provision, checkpoint_interval_blocks=checkpoint_interval),
        CleanerConfig(policy=policy),
    )
    fs.mkfs()
    return fs


def blockdata(tag: int, blocks: int = 1) -> bytes:
    return bytes([tag % 251 + 1]) * (BLOCK * blocks)


class TestF2fsNamespace:
    def test_create_open(self):
        fs = make_fs()
        fs.create("a")
        handle = fs.open("a")
        assert handle.name == "a"
        assert fs.exists("a")

    def test_create_duplicate_rejected(self):
        fs = make_fs()
        fs.create("a")
        with pytest.raises(FileExistsInFsError):
            fs.create("a")

    def test_open_missing_rejected(self):
        fs = make_fs()
        with pytest.raises(FileNotFoundInFsError):
            fs.open("missing")

    def test_delete_frees_space(self):
        fs = make_fs()
        handle = fs.create("a")
        handle.pwrite(0, blockdata(1, 8))
        live_before = fs.live_bytes
        fs.delete("a")
        assert fs.live_bytes < live_before
        assert not fs.exists("a")

    def test_unformatted_rejected(self):
        fs = make_fs()
        fs._mkfs_done = False
        with pytest.raises(NoSpaceError):
            fs.create("a")


class TestF2fsIo:
    def test_write_read_roundtrip(self):
        fs = make_fs()
        handle = fs.create("a")
        handle.pwrite(0, blockdata(7, 4))
        assert handle.pread(0, 4 * BLOCK) == blockdata(7, 4)

    def test_sparse_read_returns_zeros(self):
        fs = make_fs()
        handle = fs.create("a")
        handle.pwrite(4 * BLOCK, blockdata(1))
        data = handle.pread(0, 8 * BLOCK)
        assert data[: 4 * BLOCK] == b"\x00" * (4 * BLOCK)
        assert data[4 * BLOCK : 5 * BLOCK] == blockdata(1)

    def test_overwrite_replaces(self):
        fs = make_fs()
        handle = fs.create("a")
        handle.pwrite(0, blockdata(1, 2))
        handle.pwrite(0, blockdata(2, 2))
        assert handle.pread(0, 2 * BLOCK) == blockdata(2, 2)

    def test_overwrite_does_not_grow_live(self):
        fs = make_fs()
        handle = fs.create("a")
        handle.pwrite(0, blockdata(1, 4))
        live = fs.live_bytes
        handle.pwrite(0, blockdata(2, 4))
        assert fs.live_bytes == live

    def test_unaligned_rejected(self):
        fs = make_fs()
        handle = fs.create("a")
        with pytest.raises(AlignmentError):
            handle.pwrite(1, blockdata(1))
        with pytest.raises(AlignmentError):
            handle.pread(0, 100)

    def test_size_tracks_high_water(self):
        fs = make_fs()
        handle = fs.create("a")
        handle.pwrite(8 * BLOCK, blockdata(1))
        assert handle.size == 9 * BLOCK

    def test_enospc_on_overfill(self):
        fs = make_fs(num_blocks=128, zone_blocks=8)
        handle = fs.create("a")
        usable_blocks = fs.usable_bytes // BLOCK
        with pytest.raises(NoSpaceError):
            for i in range(usable_blocks + 8):
                handle.pwrite(i * BLOCK, blockdata(i))

    def test_write_latency_returned(self):
        fs = make_fs()
        handle = fs.create("a")
        assert handle.pwrite(0, blockdata(1)) > 0


class TestF2fsCleaning:
    def churn(self, fs, utilization=0.8, steps=1200, extent=4, seed=9):
        handle = fs.create("cache")
        nblocks = int(fs.usable_bytes * utilization) // BLOCK
        nextents = nblocks // extent
        expected = {}
        for i in range(nextents):
            handle.pwrite(i * extent * BLOCK, blockdata(i, extent))
            expected[i] = i
        rng = random.Random(seed)
        for step in range(steps):
            i = rng.randrange(nextents)
            tag = 10_000 + step
            handle.pwrite(i * extent * BLOCK, blockdata(tag, extent))
            expected[i] = tag
        return handle, expected, extent

    def test_cleaning_occurs_and_data_survives(self):
        fs = make_fs()
        handle, expected, extent = self.churn(fs)
        assert fs.cleaner.sections_cleaned > 0
        for i, tag in expected.items():
            assert handle.pread(i * extent * BLOCK, extent * BLOCK) == blockdata(
                tag, extent
            ), i

    def test_fs_waf_above_one_under_churn(self):
        fs = make_fs()
        self.churn(fs)
        assert fs.stats.write_amplification > 1.0

    def test_greedy_policy_also_works(self):
        fs = make_fs(policy=VictimPolicy.GREEDY)
        handle, expected, extent = self.churn(fs, steps=800)
        assert fs.cleaner.sections_cleaned > 0
        for i, tag in list(expected.items())[:64]:
            assert handle.pread(i * extent * BLOCK, extent * BLOCK) == blockdata(
                tag, extent
            )

    @pytest.mark.slow
    def test_more_provisioning_less_waf(self):
        """The Table 1 trend: higher OP ratio → lower FS-level WAF."""
        wafs = {}
        for provision in (0.10, 0.30):
            fs = make_fs(provision=provision)
            # A cache sized to the filesystem's usable space: more
            # provisioning → lower media utilization → cheaper cleaning.
            target_bytes = int(fs.usable_bytes * 0.85)
            handle = fs.create("cache")
            extent = 4
            nextents = target_bytes // BLOCK // extent
            rng = random.Random(21)
            for i in range(nextents):
                handle.pwrite(i * extent * BLOCK, blockdata(i, extent))
            for step in range(3000):
                handle.pwrite(
                    rng.randrange(nextents) * extent * BLOCK, blockdata(step, extent)
                )
            wafs[provision] = fs.stats.write_amplification
        assert wafs[0.30] < wafs[0.10]

    def test_device_wa_stays_one(self):
        """All cleaning is host-side: the ZNS device never amplifies."""
        fs = make_fs()
        self.churn(fs, steps=600)
        assert fs.data_device.stats.write_amplification == 1.0

    def test_meta_writes_charged(self):
        fs = make_fs()
        self.churn(fs, steps=300)
        assert fs.stats.meta_write_bytes > 0


class TestF2fsCheckpoint:
    def test_checkpoint_and_mount(self):
        fs = make_fs()
        handle = fs.create("a")
        handle.pwrite(0, blockdata(3, 4))
        fs.checkpoint()
        remounted = F2fs.mount(
            SimClock(), fs.data_device, fs.meta_device,
            F2fsConfig(checkpoint_interval_blocks=10**6),
        )
        assert remounted.open("a").pread(0, 4 * BLOCK) == blockdata(3, 4)

    def test_mount_without_mkfs_rejected(self):
        clock = SimClock()
        geometry = NandGeometry(page_size=BLOCK, pages_per_block=16, num_blocks=128)
        zns = ZnsSsd(clock, ZnsConfig(geometry=geometry, zone_size=8 * geometry.block_size))
        meta = NullBlkDevice(clock, capacity_bytes=1 * MIB)
        with pytest.raises(NoSpaceError):
            F2fs.mount(clock, zns, meta)

    def test_periodic_checkpoint_triggers(self):
        fs = make_fs(checkpoint_interval=32)
        handle = fs.create("a")
        for i in range(64):
            handle.pwrite(i * BLOCK, blockdata(i))
        assert fs.stats.checkpoints >= 1

    def test_mount_after_churn_preserves_everything(self):
        fs = make_fs()
        handle = fs.create("cache")
        rng = random.Random(31)
        expected = {}
        nblocks = (fs.usable_bytes // BLOCK) // 2
        for step in range(nblocks * 3):
            i = rng.randrange(nblocks)
            handle.pwrite(i * BLOCK, blockdata(step))
            expected[i] = step
        fs.checkpoint()
        remounted = F2fs.mount(
            SimClock(), fs.data_device, fs.meta_device,
            F2fsConfig(checkpoint_interval_blocks=10**6),
        )
        handle2 = remounted.open("cache")
        for i, tag in expected.items():
            assert handle2.pread(i * BLOCK, BLOCK) == blockdata(tag), i
