"""Property-based tests on the cache engine and LSM invariants.

* Cache: after an arbitrary set/get/delete sequence, the cache agrees
  with a model dict on every key the cache still holds (a cache may
  forget — it must never return a *wrong* value), and WAF >= 1.
* LSM: after arbitrary puts/deletes with interleaved flushes, the DB
  agrees exactly with a model dict (a database must never forget).
* ZTL: mapping stays consistent under arbitrary write/invalidate churn.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.bench.schemes import SchemeScale, build_region_cache, build_zone_cache
from repro.flash import HddConfig, HddDevice
from repro.lsm import Db, DbConfig
from repro.lsm.compaction import CompactionConfig
from repro.sim import SimClock
from repro.units import KIB, MIB

SCALE = SchemeScale(
    zone_size=128 * KIB, region_size=16 * KIB, pages_per_block=8,
    ram_bytes=8 * KIB,
)

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["set", "get", "delete"]),
        st.integers(0, 40),
        st.integers(1, 200),
    ),
    max_size=120,
)


def _value(key_index: int, size: int) -> bytes:
    return (f"V{key_index:03d}".encode() * (size // 4 + 1))[:size]


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_cache_never_returns_wrong_value(ops):
    stack = build_region_cache(SimClock(), SCALE, 8 * 128 * KIB, 6 * 128 * KIB)
    cache = stack.cache
    model = {}
    for op, key_index, size in ops:
        key = f"key{key_index:03d}".encode()
        if op == "set":
            value = _value(key_index, size)
            cache.set(key, value)
            model[key] = value
        elif op == "delete":
            cache.delete(key)
            model.pop(key, None)
        else:
            got = cache.get(key)
            if got is not None:
                assert got == model.get(key), (
                    f"cache returned stale/wrong data for {key!r}"
                )
    waf = cache.waf()
    assert waf.app >= 1.0 and waf.device >= 1.0


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_zone_cache_same_property_and_zero_wa(ops):
    stack = build_zone_cache(SimClock(), SCALE, 6 * 128 * KIB)
    cache = stack.cache
    model = {}
    for op, key_index, size in ops:
        key = f"key{key_index:03d}".encode()
        if op == "set":
            value = _value(key_index, size)
            cache.set(key, value)
            model[key] = value
        elif op == "delete":
            cache.delete(key)
            model.pop(key, None)
        else:
            got = cache.get(key)
            if got is not None:
                assert got == model.get(key)
    assert cache.waf().total == 1.0


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete", "flush"]),
            st.integers(0, 60),
            st.integers(1, 100),
        ),
        max_size=100,
    )
)
def test_lsm_agrees_with_model(ops):
    clock = SimClock()
    db = Db(
        clock,
        HddDevice(clock, HddConfig(capacity_bytes=16 * MIB)),
        DbConfig(
            memtable_bytes=2 * KIB,
            block_cache_bytes=8 * KIB,
            wal_bytes=64 * KIB,
            compaction=CompactionConfig(
                l0_trigger=2, l1_target_bytes=32 * KIB, max_table_bytes=16 * KIB
            ),
        ),
    )
    model = {}
    for op, key_index, size in ops:
        key = f"user{key_index:04d}".encode()
        if op == "put":
            value = _value(key_index, size)
            db.put(key, value)
            model[key] = value
        elif op == "delete":
            db.delete(key)
            model.pop(key, None)
        else:
            db.flush_memtable()
    for key_index in range(61):
        key = f"user{key_index:04d}".encode()
        assert db.get(key) == model.get(key), key
