"""Tests for the CLOCK policy, track_front, and windowed reclaim."""

import pytest

from repro.cache.eviction import make_eviction_policy
from repro.cache.region import RegionMeta
from repro.cache.region_manager import RegionManager


class TestClockPolicy:
    def test_unreferenced_evicted_in_order(self):
        policy = make_eviction_policy("clock")
        for region_id in (1, 2, 3):
            policy.track(region_id)
        # All enter referenced; first scan strips everyone → oldest wins.
        assert policy.pick_victim() == 1

    def test_referenced_region_survives_a_lap(self):
        policy = make_eviction_policy("clock")
        for region_id in (1, 2, 3):
            policy.track(region_id)
        policy.pick_victim()  # strips the initial bits
        policy.untrack(1)
        policy.touch(2)
        # 2 is referenced → skipped once; 3 is clean → victim.
        assert policy.pick_victim() == 3

    def test_degenerates_to_fifo_when_all_hot(self):
        policy = make_eviction_policy("clock")
        for region_id in (1, 2, 3):
            policy.track(region_id)
        for region_id in (1, 2, 3):
            policy.touch(region_id)
        assert policy.pick_victim() == 1

    def test_track_front(self):
        policy = make_eviction_policy("clock")
        policy.track(2)
        policy.track_front(1)
        policy.pick_victim()  # strip pass
        assert policy.pick_victim() == 1

    def test_len_and_untrack(self):
        policy = make_eviction_policy("clock")
        policy.track(1)
        assert len(policy) == 1
        policy.untrack(1)
        assert policy.pick_victim() is None


class TestTrackFront:
    @pytest.mark.parametrize("kind", ["lru", "fifo"])
    def test_front_is_next_victim(self, kind):
        policy = make_eviction_policy(kind)
        policy.track(5)
        policy.track(6)
        policy.track_front(9)
        assert policy.pick_victim() == 9


class TestWindowedReclaim:
    def seal_all(self, manager, count):
        for _ in range(count):
            region_id, evicted = manager.allocate()
            assert not evicted
            manager.seal(RegionMeta(region_id))

    def test_window_one_is_strict_policy_order(self):
        manager = RegionManager(4, "fifo", reclaim_window=1)
        self.seal_all(manager, 4)
        victims = [manager.allocate()[0] for _ in range(2)]
        assert victims == [0, 1]

    def test_windowed_victims_stay_near_head(self):
        manager = RegionManager(16, "fifo", reclaim_window=4, seed=3)
        self.seal_all(manager, 16)
        first = manager.allocate()[0]
        assert first in (0, 1, 2, 3)

    def test_windowed_reclaim_covers_everything(self):
        """Reuse order may deviate by the window, but over a few cycles
        every region is reclaimed."""
        manager = RegionManager(8, "fifo", reclaim_window=3, seed=5)
        self.seal_all(manager, 8)
        victims = []
        for _ in range(24):  # three cycles
            region_id, _ = manager.allocate()
            victims.append(region_id)
            manager.seal(RegionMeta(region_id))
        assert set(victims) == set(range(8))

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RegionManager(4, "fifo", reclaim_window=0)

    def test_eviction_position_ordering(self):
        manager = RegionManager(8, "fifo")
        self.seal_all(manager, 4)
        assert manager.eviction_position(0) == 0.0  # next victim
        assert manager.eviction_position(3) == 1.0  # most recent
        middle = manager.eviction_position(1)
        assert 0.0 < middle < 1.0

    def test_eviction_position_unsealed_is_none(self):
        manager = RegionManager(8, "fifo")
        assert manager.eviction_position(0) is None

    def test_policy_order_matches_victims(self):
        policy = make_eviction_policy("fifo")
        for region_id in (5, 3, 9):
            policy.track(region_id)
        assert policy.order() == [5, 3, 9]
        assert policy.pick_victim() == 5

    def test_eviction_returns_keys(self):
        manager = RegionManager(2, "fifo")
        a, _ = manager.allocate()
        meta = RegionMeta(a)
        meta.note_inserted(b"k1")
        manager.seal(meta)
        b, _ = manager.allocate()
        manager.seal(RegionMeta(b))
        victim, evicted = manager.allocate()
        assert victim == a
        assert evicted == {b"k1"}
