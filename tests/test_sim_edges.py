"""Edge-case tests across the simulation substrate that the main test
modules do not cover."""


from repro.flash import (
    BlockSsd,
    BlockSsdConfig,
    FtlConfig,
    NandGeometry,
    NandTiming,
    ZnsConfig,
    ZnsSsd,
)
from repro.sim import SimClock
from repro.units import KIB


class TestBlockSsdMaintenance:
    def make(self, interval_bytes, maintenance_ns=1_000_000):
        clock = SimClock()
        geometry = NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=64)
        return (
            BlockSsd(
                clock,
                BlockSsdConfig(
                    geometry=geometry,
                    ftl=FtlConfig(0.25),
                    maintenance_interval_bytes=interval_bytes,
                    maintenance_ns=maintenance_ns,
                ),
            ),
            clock,
        )

    def test_maintenance_disabled(self):
        ssd, _ = self.make(interval_bytes=0)
        latencies = [
            ssd.write(i * 4096, b"\x01" * 4096).latency_ns for i in range(64)
        ]
        assert max(latencies) == min(latencies)

    def test_maintenance_stalls_after_write_volume(self):
        ssd, _ = self.make(interval_bytes=16 * 4096, maintenance_ns=50_000_000)
        latencies = [
            ssd.write(i * 4096, b"\x01" * 4096).latency_ns for i in range(64)
        ]
        # A few writes queued behind maintenance bursts.
        assert max(latencies) > 10 * min(latencies)

    def test_maintenance_scales_with_bytes_not_ops(self):
        ssd, _ = self.make(interval_bytes=1024 * 4096, maintenance_ns=50_000_000)
        # Few bytes → no maintenance regardless of op count.
        for _ in range(200):
            ssd.read(0, 4096)
        stats = ssd.stats.read_latency
        assert stats.max() < 1_000_000


class TestZnsAppendAndLimits:
    def make(self):
        clock = SimClock()
        geometry = NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=64)
        return ZnsSsd(
            clock,
            ZnsConfig(geometry=geometry, zone_size=4 * geometry.block_size,
                      max_open_zones=2, max_active_zones=3),
        )

    def test_append_interleaves_zones(self):
        zns = self.make()
        a = zns.append(0, b"\x01" * 4096)
        b = zns.append(1, b"\x02" * 4096)
        c = zns.append(0, b"\x03" * 4096)
        assert a.offset == 0
        assert b.offset == zns.zone_size
        assert c.offset == 4096

    def test_background_write_skips_latency_stats(self):
        zns = self.make()
        zns.write(0, b"\x01" * 4096, background=True)
        assert zns.stats.write_latency.count == 0
        assert zns.stats.host_write_bytes == 4096

    def test_timing_parallelism_parameter(self):
        fast = NandTiming(page_program_ns=100, bus_ns_per_byte=0, command_overhead_ns=0)
        assert fast.program_ns(16, 0, parallelism=16) == 100
        assert fast.program_ns(16, 0, parallelism=1) == 1600


class TestDeviceStatsSnapshot:
    def test_snapshot_fields(self):
        clock = SimClock()
        geometry = NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=64)
        ssd = BlockSsd(clock, BlockSsdConfig(geometry=geometry))
        ssd.write(0, b"\x01" * 4096)
        ssd.read(0, 4096)
        snap = ssd.stats.snapshot()
        for key in (
            "host_read_bytes",
            "host_write_bytes",
            "media_write_bytes",
            "write_amplification",
            "read_p99_ns",
        ):
            assert key in snap
        assert snap["host_write_bytes"] == 4096
