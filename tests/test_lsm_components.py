"""Unit tests for LSM building blocks: bloom, blocks, extents, memtable,
WAL, version manifest."""

import pytest

from repro.errors import NoSpaceError
from repro.flash import NullBlkDevice
from repro.lsm import (
    BlockHandle,
    BloomFilter,
    DataBlock,
    DataBlockBuilder,
    Memtable,
    TableSpace,
    Version,
    WriteAheadLog,
)
from repro.sim import SimClock
from repro.units import MIB


class TestBloomFilter:
    def test_no_false_negatives(self):
        keys = [f"key{i}".encode() for i in range(500)]
        bloom = BloomFilter.for_keys(keys)
        assert all(bloom.may_contain(k) for k in keys)

    def test_low_false_positive_rate(self):
        keys = [f"key{i}".encode() for i in range(2000)]
        bloom = BloomFilter.for_keys(keys, bits_per_key=10)
        probes = [f"other{i}".encode() for i in range(2000)]
        fp = sum(bloom.may_contain(p) for p in probes)
        assert fp / len(probes) < 0.03

    def test_serialization_roundtrip(self):
        keys = [f"key{i}".encode() for i in range(100)]
        bloom = BloomFilter.for_keys(keys)
        restored = BloomFilter.from_bytes(bloom.to_bytes())
        assert all(restored.may_contain(k) for k in keys)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BloomFilter(4, 1)
        with pytest.raises(ValueError):
            BloomFilter(64, 0)


class TestDataBlock:
    def test_build_and_lookup(self):
        builder = DataBlockBuilder(4096)
        for i in range(20):
            builder.add(f"key{i:04d}".encode(), f"value{i}".encode())
        block = DataBlock(builder.finish())
        assert len(block) == 20
        assert block.get(b"key0007") == b"value7"
        assert block.get(b"key9999") is None

    def test_keys_must_ascend(self):
        builder = DataBlockBuilder(4096)
        builder.add(b"b", b"1")
        with pytest.raises(ValueError):
            builder.add(b"a", b"2")
        with pytest.raises(ValueError):
            builder.add(b"b", b"3")

    def test_overflow_detection(self):
        builder = DataBlockBuilder(64)
        builder.add(b"a", b"x" * 20)
        assert builder.would_overflow(b"b", b"y" * 40)
        assert not builder.would_overflow(b"b", b"y" * 10)

    def test_decode_zero_padded(self):
        builder = DataBlockBuilder(4096)
        builder.add(b"k", b"v")
        blob = builder.finish() + b"\x00" * 128
        block = DataBlock(blob)
        assert len(block) == 1
        assert block.get(b"k") == b"v"

    def test_handle_roundtrip(self):
        handle = BlockHandle(8192, 4000)
        assert BlockHandle.from_bytes(handle.to_bytes()) == handle


class TestTableSpace:
    def make(self, capacity=1 * MIB) -> TableSpace:
        return TableSpace(NullBlkDevice(SimClock(), capacity_bytes=capacity))

    def test_allocate_and_release(self):
        space = self.make()
        offset = space.allocate(10_000)
        assert offset == 0
        assert space.allocated_extents == 1
        space.release(offset)
        assert space.free_bytes == 1 * MIB

    def test_alignment(self):
        space = self.make()
        offset = space.allocate(100)
        second = space.allocate(100)
        assert second % 4096 == 0
        assert second > offset

    def test_exhaustion(self):
        space = self.make(capacity=64 * 1024)
        space.allocate(60 * 1024)
        with pytest.raises(NoSpaceError):
            space.allocate(8 * 1024)

    def test_coalescing(self):
        space = self.make(capacity=64 * 1024)
        a = space.allocate(16 * 1024)
        b = space.allocate(16 * 1024)
        c = space.allocate(16 * 1024)
        space.release(a)
        space.release(c)
        space.release(b)  # middle release must merge all three
        assert space.allocate(48 * 1024) is not None

    def test_double_release_rejected(self):
        space = self.make()
        offset = space.allocate(4096)
        space.release(offset)
        with pytest.raises(KeyError):
            space.release(offset)


class TestMemtable:
    def test_put_get(self):
        table = Memtable(4096)
        table.put(b"k", b"v")
        assert table.get(b"k") == b"v"

    def test_overwrite_updates_size(self):
        table = Memtable(4096)
        table.put(b"k", b"v" * 100)
        table.put(b"k", b"v")
        assert table.size_bytes == 1 + 1

    def test_full_detection(self):
        table = Memtable(1024)
        table.put(b"k", b"v" * 1100)
        assert table.is_full

    def test_sorted_entries(self):
        table = Memtable(4096)
        for key in (b"c", b"a", b"b"):
            table.put(key, key)
        assert [k for k, _ in table.sorted_entries()] == [b"a", b"b", b"c"]

    def test_clear(self):
        table = Memtable(4096)
        table.put(b"k", b"v")
        table.clear()
        assert len(table) == 0
        assert table.size_bytes == 0


class TestWal:
    def make(self):
        device = NullBlkDevice(SimClock(), capacity_bytes=1 * MIB)
        return WriteAheadLog(device, offset=0, size=64 * 1024), device

    def test_append_batches_into_blocks(self):
        wal, device = self.make()
        before = device.stats.host_write_bytes
        wal.append(b"x" * 100)
        assert device.stats.host_write_bytes == before  # still buffered
        for _ in range(50):
            wal.append(b"x" * 100)
        assert device.stats.host_write_bytes > before

    def test_sync_flushes_tail(self):
        wal, device = self.make()
        wal.append(b"x" * 10)
        wal.sync()
        assert device.stats.host_write_bytes >= device.block_size

    def test_full_extent_raises(self):
        from repro.lsm.wal import WalFullError

        wal, device = self.make()
        with pytest.raises(WalFullError):
            for _ in range(2000):
                wal.append(b"y" * 100)

    def test_reset_allows_reuse(self):
        from repro.lsm.wal import WalFullError

        wal, device = self.make()
        try:
            for _ in range(2000):
                wal.append(b"y" * 100)
        except WalFullError:
            pass
        wal.reset()
        wal.append(b"z" * 100)  # must not raise

    def test_replay_roundtrip(self):
        wal, device = self.make()
        records = [f"record-{i}".encode() for i in range(40)]
        for record in records:
            wal.append(record)
        wal.sync()
        assert list(wal.replay(wal.epoch)) == records

    def test_replay_skips_sync_padding(self):
        wal, device = self.make()
        wal.append(b"first")
        wal.sync()  # pads this block
        wal.append(b"second")
        wal.sync()
        assert list(wal.replay(wal.epoch)) == [b"first", b"second"]

    def test_replay_ignores_stale_epochs(self):
        wal, device = self.make()
        wal.append(b"old-record")
        wal.sync()
        wal.reset()
        wal.append(b"new-record")
        wal.sync()
        assert list(wal.replay(wal.epoch)) == [b"new-record"]

    def test_replay_of_empty_epoch(self):
        wal, device = self.make()
        wal.reset()
        assert list(wal.replay(wal.epoch)) == []

    def test_invalid_size(self):
        device = NullBlkDevice(SimClock(), capacity_bytes=1 * MIB)
        with pytest.raises(ValueError):
            WriteAheadLog(device, 0, 1000)


class TestVersion:
    def make_table(self, table_id, smallest, largest, space):
        from repro.lsm.sstable import SSTableBuilder

        builder = SSTableBuilder(table_id, space)
        builder.add(smallest, b"v")
        if largest != smallest:
            builder.add(largest, b"v")
        return builder.finish()

    def test_l0_newest_first(self):
        space = TableSpace(NullBlkDevice(SimClock(), capacity_bytes=1 * MIB))
        version = Version()
        t1 = self.make_table(1, b"a", b"z", space)
        t2 = self.make_table(2, b"a", b"z", space)
        version.add_l0(t1)
        version.add_l0(t2)
        candidates = version.candidates_for(b"m")
        assert [t.table_id for t in candidates[:2]] == [2, 1]

    def test_leveled_binary_search(self):
        space = TableSpace(NullBlkDevice(SimClock(), capacity_bytes=1 * MIB))
        version = Version()
        ta = self.make_table(1, b"a", b"f", space)
        tb = self.make_table(2, b"g", b"p", space)
        version.install_level(1, [tb, ta])  # order normalized internally
        assert version.candidates_for(b"h") == [tb]
        assert version.candidates_for(b"q") == []

    def test_overlap_rejected(self):
        space = TableSpace(NullBlkDevice(SimClock(), capacity_bytes=1 * MIB))
        version = Version()
        ta = self.make_table(1, b"a", b"m", space)
        tb = self.make_table(2, b"h", b"z", space)
        with pytest.raises(ValueError):
            version.install_level(1, [ta, tb])

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            Version(num_levels=1)
