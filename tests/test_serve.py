"""Tests for the serving layer: hashing, arrivals, QoS, cluster, server.

Covers the determinism contract (same seed → byte-identical report
rows), consistent-hash balance and minimal movement, Poisson statistics,
load shedding past the knee, and single-shard parity with the
closed-loop CacheBench driver.
"""

import math
import statistics

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.bench.experiments import (
    _serving_scale,
    run_serving_smoke,
    run_serving_sweep,
)
from repro.bench.schemes import SchemeScale, build_scheme
from repro.cache import AdmissionConfig, CacheConfig, TinyLfuAdmission
from repro.cache.admission import CountMinSketch, build_admission
from repro.errors import ConfigError
from repro.serve import (
    BurstArrivals,
    CacheCluster,
    ConsistentHashRing,
    DiurnalArrivals,
    PoissonArrivals,
    Server,
    ServerConfig,
    ShardSpec,
    SloTracker,
    TenantConfig,
    TokenBucket,
    hash32,
)
from repro.sim import SimClock
from repro.units import KIB, SEC
from repro.workloads import CacheBenchConfig, CacheBenchDriver


SMALL = SchemeScale(
    zone_size=256 * KIB,
    region_size=16 * KIB,
    pages_per_block=16,
    ram_bytes=32 * KIB,
)


class TestHash32:
    def test_deterministic_across_instances(self):
        assert hash32(b"key-1") == hash32(b"key-1")
        assert hash32(b"key-1", salt=1) != hash32(b"key-1", salt=2)

    def test_spreads_sequential_keys(self):
        values = {hash32(f"k{i}".encode()) for i in range(1000)}
        assert len(values) == 1000
        # Sequential inputs should not cluster in one quadrant.
        quadrants = {v >> 30 for v in values}
        assert quadrants == {0, 1, 2, 3}


class TestConsistentHashRing:
    def _keys(self, n=10_000):
        return [f"user:{i}".encode() for i in range(n)]

    def test_balance_across_10k_keys(self):
        ring = ConsistentHashRing(["s0", "s1", "s2"], vnodes=128)
        counts = {"s0": 0, "s1": 0, "s2": 0}
        for key in self._keys():
            counts[ring.node_for(key)] += 1
        mean = 10_000 / 3
        for node, count in counts.items():
            assert abs(count - mean) / mean < 0.35, (node, counts)

    def test_add_node_moves_few_keys(self):
        keys = self._keys()
        ring = ConsistentHashRing(["s0", "s1", "s2"], vnodes=128)
        before = {key: ring.node_for(key) for key in keys}
        ring.add_node("s3")
        moved = sum(1 for key in keys if ring.node_for(key) != before[key])
        # Ideal movement is 1/4 of the keyspace; allow generous slack.
        assert moved / len(keys) < 0.40
        # Every moved key must have moved *to* the new node, never
        # between surviving nodes.
        for key in keys:
            after = ring.node_for(key)
            if after != before[key]:
                assert after == "s3"

    def test_remove_node_moves_only_its_keys(self):
        keys = self._keys()
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"], vnodes=128)
        before = {key: ring.node_for(key) for key in keys}
        ring.remove_node("s3")
        for key in keys:
            if before[key] != "s3":
                assert ring.node_for(key) == before[key]
            else:
                assert ring.node_for(key) != "s3"

    def test_ring_validation(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ConfigError):
            ring.add_node("a")
        with pytest.raises(ConfigError):
            ring.remove_node("missing")
        with pytest.raises(ConfigError):
            ConsistentHashRing([]).node_for(b"k")
        with pytest.raises(ConfigError):
            ConsistentHashRing(vnodes=0)


_NODE_NAMES = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
    ),
    min_size=1,
    max_size=8,
    unique=True,
)


class TestNodesForProperties:
    """Hypothesis properties of the ring's successor lists — the replica
    placement contract the failover machinery (PR 8) leans on."""

    @given(names=_NODE_NAMES, key=st.binary(min_size=1, max_size=24),
           count=st.integers(min_value=1, max_value=12))
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_distinct_nodes_primary_first(self, names, key, count):
        ring = ConsistentHashRing(names, vnodes=16)
        owners = ring.nodes_for(key, count)
        assert len(owners) == min(count, len(names))
        assert len(set(owners)) == len(owners)
        assert owners[0] == ring.node_for(key)
        assert set(owners) <= set(names)

    @given(names=_NODE_NAMES, key=st.binary(min_size=1, max_size=24),
           data=st.data())
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_successor_order_stable_under_node_removal(self, names, key, data):
        """Removing a node must not reorder the survivors: the full
        ring's successor list, filtered to the remaining nodes, is
        exactly the smaller ring's successor list.  This is what makes
        read fallback hit the shard hinted writes were journaled for."""
        removed = data.draw(st.sampled_from(names))
        full = ConsistentHashRing(names, vnodes=16)
        keep = [name for name in names if name != removed]
        if not keep:
            return
        subset = ConsistentHashRing(keep, vnodes=16)
        full_order = [
            n for n in full.nodes_for(key, len(names)) if n != removed
        ]
        assert subset.nodes_for(key, len(keep)) == full_order

    @given(names=_NODE_NAMES, key=st.binary(min_size=1, max_size=24),
           extra=st.text(alphabet="xyz", min_size=13, max_size=16))
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_add_then_remove_restores_order(self, names, key, extra):
        ring = ConsistentHashRing(names, vnodes=16)
        before = ring.nodes_for(key, len(names))
        ring.add_node(extra)
        ring.remove_node(extra)
        assert ring.nodes_for(key, len(names)) == before

    @given(names=_NODE_NAMES, key=st.binary(min_size=1, max_size=24),
           count=st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fallback_order_deterministic_across_instances(
        self, names, key, count
    ):
        """Two independently-built rings over the same nodes agree on
        the whole fallback order — any server process computes the same
        replica set, no coordination needed."""
        a = ConsistentHashRing(names, vnodes=16)
        b = ConsistentHashRing(list(names), vnodes=16)
        assert a.nodes_for(key, count) == b.nodes_for(key, count)


class TestArrivals:
    def test_poisson_mean_and_variance(self):
        rate = 10_000.0
        process = PoissonArrivals(rate, seed=9)
        gaps = []
        now = 0
        for _ in range(20_000):
            nxt = process.next_arrival_ns(now)
            gaps.append(nxt - now)
            now = nxt
        mean = statistics.fmean(gaps)
        expected = SEC / rate
        assert abs(mean - expected) / expected < 0.03
        # Exponential gaps: stdev equals the mean.
        stdev = statistics.pstdev(gaps)
        assert abs(stdev - mean) / mean < 0.05

    def test_poisson_deterministic(self):
        a = PoissonArrivals(5000.0, seed=3)
        b = PoissonArrivals(5000.0, seed=3)
        now_a = now_b = 0
        for _ in range(100):
            now_a = a.next_arrival_ns(now_a)
            now_b = b.next_arrival_ns(now_b)
        assert now_a == now_b

    def _mean_rate(self, process, horizon_s=2.0):
        now, count = 0, 0
        horizon = int(horizon_s * SEC)
        while True:
            now = process.next_arrival_ns(now)
            if now > horizon:
                break
            count += 1
        return count / horizon_s

    def test_burst_preserves_mean_rate(self):
        rate = 20_000.0
        process = BurstArrivals(rate, burst_factor=4.0, seed=11)
        assert abs(self._mean_rate(process) - rate) / rate < 0.10

    def test_diurnal_preserves_mean_rate(self):
        rate = 20_000.0
        process = DiurnalArrivals(rate, amplitude=0.5, period_s=0.1, seed=12)
        assert abs(self._mean_rate(process) - rate) / rate < 0.10

    def test_burst_rate_switches(self):
        process = BurstArrivals(1000.0, burst_factor=4.0, on_s=0.02, off_s=0.08)
        assert process.rate_at(0) == pytest.approx(4000.0)
        off = process.rate_at(int(0.05 * SEC))
        assert off < 1000.0
        # On/off mix solves back to the base rate.
        mixed = (process.on_rate * 0.02 + off * 0.08) / 0.1
        assert mixed == pytest.approx(1000.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(0.0)
        with pytest.raises(ConfigError):
            DiurnalArrivals(100.0, amplitude=1.5)
        with pytest.raises(ConfigError):
            BurstArrivals(100.0, burst_factor=0.5)


class TestTokenBucket:
    def test_burst_then_reject(self):
        bucket = TokenBucket(1000.0, burst=4.0)
        results = [bucket.try_take(0) for _ in range(6)]
        assert results == [True] * 4 + [False] * 2
        assert bucket.accepted == 4 and bucket.rejected == 2

    def test_refills_with_virtual_time(self):
        bucket = TokenBucket(1000.0, burst=1.0)
        assert bucket.try_take(0)
        assert not bucket.try_take(0)
        # 1 ms at 1000 tokens/s refills exactly one token.
        assert bucket.try_take(int(0.001 * SEC))

    def test_validation(self):
        with pytest.raises(ConfigError):
            TokenBucket(0.0)
        with pytest.raises(ConfigError):
            TokenBucket(10.0, burst=0.5)


class TestSloTracker:
    def test_accounting(self):
        slo = SloTracker("t", slo_latency_ns=1000)
        for _ in range(4):
            slo.record_offered()
        slo.record_completion(500, is_get=True, hit=True)
        slo.record_completion(2000, is_get=True, hit=False)
        slo.record_shed("rate_limited")
        slo.record_shed("queue_full")
        assert slo.shed == 2 and slo.shed_rate == pytest.approx(0.5)
        assert slo.hit_ratio == pytest.approx(0.5)
        row = slo.row(elapsed_seconds=1.0)
        assert row["completed"] == 2
        assert row["slo_attainment"] == pytest.approx(0.5)
        assert row["goodput_kops"] == pytest.approx(0.001)
        with pytest.raises(ValueError):
            slo.record_shed("cosmic_rays")


class TestValidation:
    def test_cachebench_value_distribution(self):
        with pytest.raises(ConfigError):
            CacheBenchConfig(value_sizes=(100, 200), value_weights=(1.0,))
        with pytest.raises(ConfigError):
            CacheBenchConfig(value_sizes=(100,), value_weights=(0.0,))
        with pytest.raises(ConfigError):
            CacheBenchConfig(value_sizes=(), value_weights=())
        with pytest.raises(ConfigError):
            CacheBenchConfig(value_sizes=(0,), value_weights=(1.0,))
        # ConfigError is a ValueError, so legacy callers keep working.
        assert issubclass(ConfigError, ValueError)

    def test_tenant_config(self):
        with pytest.raises(ConfigError):
            TenantConfig("")
        with pytest.raises(ConfigError):
            TenantConfig("t", rate_ops_per_sec=0.0)
        with pytest.raises(ConfigError):
            TenantConfig("t", arrival="tidal")
        with pytest.raises(ConfigError):
            TenantConfig("t", slo_p99_ms=0.0)
        assert TenantConfig("web").effective_key_prefix == b"web:"
        assert TenantConfig("web", key_prefix=b"").effective_key_prefix == b""

    def test_shard_and_server_config(self):
        with pytest.raises(ConfigError):
            ShardSpec("Quantum-Cache", media_bytes=1)
        with pytest.raises(ConfigError):
            ShardSpec("Zone-Cache", media_bytes=0)
        with pytest.raises(ConfigError):
            ServerConfig(max_queue_depth=0)
        with pytest.raises(ConfigError):
            CacheCluster([])
        with pytest.raises(ConfigError):
            CacheCluster.homogeneous("Zone-Cache", 0, 1024)

    def test_duplicate_tenant_names_rejected(self):
        cluster = CacheCluster.homogeneous(
            "Zone-Cache", 1, 4 * SMALL.zone_size, scale=SMALL
        )
        tenants = [TenantConfig("a"), TenantConfig("a")]
        with pytest.raises(ConfigError):
            Server(cluster, tenants)


class TestAdmission:
    def test_count_min_sketch(self):
        sketch = CountMinSketch(width=64, depth=4, seed=1)
        for _ in range(5):
            sketch.add(b"hot")
        sketch.add(b"cold")
        assert sketch.estimate(b"hot") >= 5
        assert sketch.estimate(b"cold") >= 1
        assert sketch.estimate(b"never") <= sketch.estimate(b"hot")
        sketch.halve()
        assert sketch.estimate(b"hot") >= 2

    def test_tinylfu_doorkeeper(self):
        policy = TinyLfuAdmission(width=256, depth=4, threshold=2, seed=1)
        assert not policy.admit(b"k1", b"v")  # first sight: one-hit wonder
        assert policy.admit(b"k1", b"v")  # second sight passes
        assert not policy.admit(b"k2", b"v")

    def test_tinylfu_aging(self):
        policy = TinyLfuAdmission(
            width=256, depth=4, threshold=3, decay_ops=4, seed=1
        )
        for _ in range(4):
            policy.admit(b"k", b"v")  # 4th admit triggers a halve
        assert policy.sketch.estimate(b"k") == 2

    def test_admission_config_validation(self):
        with pytest.raises(ConfigError):
            AdmissionConfig(policy="clairvoyant")
        with pytest.raises(ConfigError):
            AdmissionConfig(probability=1.5)
        with pytest.raises(ConfigError):
            AdmissionConfig(tinylfu_width=4)

    def test_build_admission_and_cache_config(self):
        policy = build_admission(AdmissionConfig(policy="tinylfu"))
        assert isinstance(policy, TinyLfuAdmission)
        config = CacheConfig(
            region_size=SMALL.region_size,
            num_regions=16,
            admission=AdmissionConfig(policy="tinylfu", tinylfu_threshold=2),
        )
        assert config.admission.policy == "tinylfu"

    def test_tinylfu_engine_filters_one_hit_wonders(self):
        media = 8 * SMALL.zone_size
        stack = build_scheme(
            "Region-Cache",
            SimClock(),
            SMALL,
            media,
            6 * SMALL.zone_size,
            admission=AdmissionConfig(policy="tinylfu"),
        )
        assert isinstance(stack.cache.admission, TinyLfuAdmission)
        stack.cache.set(b"once", b"x" * 64)
        assert stack.cache.stats.sets_admitted == 0  # one-hit wonder filtered
        stack.cache.set(b"twice", b"x" * 64)
        stack.cache.set(b"twice", b"x" * 64)
        assert stack.cache.stats.sets_admitted == 1  # doorkeeper passed it
        # The RAM tier still serves the filtered key.
        assert stack.cache.get(b"once") == b"x" * 64


def _tiny_cluster(scheme="Region-Cache", shards=2):
    cache = None if scheme == "Zone-Cache" else 6 * SMALL.zone_size
    file_media = 12 * SMALL.zone_size if scheme == "File-Cache" else None
    return CacheCluster.homogeneous(
        scheme,
        shards,
        8 * SMALL.zone_size,
        cache,
        file_media_bytes=file_media,
        scale=SMALL,
        cache_overrides=(("eviction_policy", "fifo"),),
    )


def _tiny_tenants(num_ops=400, rate=50_000.0):
    return [
        TenantConfig(
            "web",
            rate_ops_per_sec=rate,
            workload=CacheBenchConfig(num_ops=num_ops, num_keys=500, seed=5),
            seed=21,
        ),
        TenantConfig(
            "batch",
            rate_ops_per_sec=rate / 2,
            arrival="burst",
            workload=CacheBenchConfig(num_ops=num_ops, num_keys=300, seed=6),
            rate_limit_ops_per_sec=rate,
            seed=22,
        ),
    ]


class TestServer:
    def test_mixed_fleet_and_routing(self):
        specs = [
            ShardSpec(
                "Region-Cache",
                media_bytes=8 * SMALL.zone_size,
                cache_bytes=6 * SMALL.zone_size,
            ),
            ShardSpec("Zone-Cache", media_bytes=8 * SMALL.zone_size),
        ]
        cluster = CacheCluster(specs, scale=SMALL)
        report = Server(cluster, _tiny_tenants(), ServerConfig(24)).run()
        assert report.offered == 800
        assert report.completed + report.shed == report.offered
        served = [row["served"] for row in report.shard_rows]
        assert all(count > 0 for count in served)  # both shards got traffic
        schemes = {row["scheme"] for row in report.shard_rows}
        assert schemes == {"Region-Cache", "Zone-Cache"}

    def test_deterministic_report(self):
        run_a = Server(_tiny_cluster(), _tiny_tenants(), ServerConfig(24)).run()
        run_b = Server(_tiny_cluster(), _tiny_tenants(), ServerConfig(24)).run()
        assert run_a.tenant_rows == run_b.tenant_rows
        assert run_a.shard_rows == run_b.shard_rows

    def test_overload_sheds_with_bounded_p99(self):
        # 10x the sustainable rate on one shard: the bounded queue must
        # shed rather than let latency grow with the backlog.
        tenants = [
            TenantConfig(
                "hot",
                rate_ops_per_sec=400_000.0,
                workload=CacheBenchConfig(num_ops=2000, num_keys=500, seed=5),
                seed=31,
            )
        ]
        config = ServerConfig(max_queue_depth=16)
        report = Server(_tiny_cluster(shards=1), tenants, config).run()
        row = report.tenant_rows[0]
        assert row["shed_queue_full"] > 0
        # p99 bounded by roughly queue_depth * worst service time, far
        # below what an unbounded queue would accumulate at 10x load.
        assert row["p99_us"] < 50_000
        assert report.shed_rate > 0.3

    def test_rate_limit_isolates_before_queue(self):
        tenants = [
            TenantConfig(
                "limited",
                rate_ops_per_sec=100_000.0,
                workload=CacheBenchConfig(num_ops=1000, num_keys=400, seed=5),
                rate_limit_ops_per_sec=10_000.0,
                rate_limit_burst=8.0,
                seed=33,
            )
        ]
        report = Server(
            _tiny_cluster(shards=1), tenants, ServerConfig(1024)
        ).run()
        row = report.tenant_rows[0]
        assert row["shed_rate_limited"] > 0
        assert row["shed_queue_full"] == 0  # bucket clips before the queue

    def test_qos_events_on_span_bus(self):
        cluster = _tiny_cluster(shards=1)
        tracer = cluster.shards[0].stack.cache.store.tracer
        seen = []
        tracer.subscribe(
            lambda event: seen.append(event.op)
            if event.layer == "serve.qos"
            else None
        )
        tenants = [
            TenantConfig(
                "hot",
                rate_ops_per_sec=400_000.0,
                workload=CacheBenchConfig(num_ops=1000, num_keys=400, seed=5),
                seed=31,
            )
        ]
        Server(cluster, tenants, ServerConfig(8)).run()
        assert "shed_queue_full" in seen


class TestClosedLoopParity:
    def test_single_shard_matches_closed_loop(self):
        workload = CacheBenchConfig(
            num_ops=3000, num_keys=800, zipf_theta=1.0, set_on_miss=True, seed=5
        )
        media = 8 * SMALL.zone_size
        cache_bytes = 6 * SMALL.zone_size

        closed = build_scheme(
            "Region-Cache",
            SimClock(),
            SMALL,
            media,
            cache_bytes,
            eviction_policy="fifo",
        )
        closed_result = CacheBenchDriver(workload).run(closed.cache)

        cluster = CacheCluster.homogeneous(
            "Region-Cache",
            1,
            media,
            cache_bytes,
            scale=SMALL,
            cache_overrides=(("eviction_policy", "fifo"),),
        )
        tenants = [
            TenantConfig(
                "solo",
                rate_ops_per_sec=20_000.0,
                workload=workload,
                key_prefix=b"",  # byte-identical keys to the closed loop
                rate_limit_ops_per_sec=0.0,
                seed=41,
            )
        ]
        # Queue deep enough that nothing is ever shed: the serving path
        # then applies the exact closed-loop op stream in order.
        report = Server(cluster, tenants, ServerConfig(100_000)).run()
        row = report.tenant_rows[0]
        assert row["shed_rate_limited"] == 0 and row["shed_queue_full"] == 0
        assert row["completed"] == workload.num_ops

        assert row["hit_ratio"] == pytest.approx(
            closed_result.hit_ratio, abs=0.01
        )
        serve_waf = cluster.shards[0].stack.cache.waf()
        closed_waf = closed.cache.waf()
        assert serve_waf.app == pytest.approx(closed_waf.app, rel=0.05)
        assert serve_waf.device == pytest.approx(closed_waf.device, rel=0.05)


class TestServingExperimentGolden:
    def test_smoke_golden(self):
        rows_a = run_serving_smoke()
        rows_b = run_serving_smoke()
        assert rows_a == rows_b
        tenants = [row["tenant"] for row in rows_a if "tenant" in row]
        assert tenants == ["web", "batch"]
        assert all(row["cluster_shed_rate"] > 0 for row in rows_a[:2])
        shard_schemes = [row["scheme"] for row in rows_a if "scheme" in row]
        assert shard_schemes == ["Region-Cache", "Zone-Cache"]

    def test_sweep_golden(self):
        kwargs = dict(offered_kops=(40.0, 360.0), requests_per_tenant=700)
        rows_a = run_serving_sweep(**kwargs)
        rows_b = run_serving_sweep(**kwargs)
        assert rows_a == rows_b
        schemes = {row["scheme"] for row in rows_a}
        assert schemes == {
            "Region-Cache", "Zone-Cache", "File-Cache", "Block-Cache"
        }
        for scheme in schemes:
            past_knee = [
                row
                for row in rows_a
                if row["scheme"] == scheme
                and row["offered_total_kops"] == 360.0
                and row["tenant"] == "web"
            ]
            assert len(past_knee) == 1
            row = past_knee[0]
            # Past the knee: shedding engages, p99 stays bounded.
            assert row["shed_rate"] > 0.0, scheme
            assert row["p99_us"] < 100_000, scheme
            assert math.isfinite(row["goodput_kops"])

    def test_sweep_tinylfu_variant(self):
        rows = run_serving_sweep(
            offered_kops=(40.0,),
            requests_per_tenant=500,
            schemes=("Region-Cache",),
            admission="tinylfu",
        )
        assert rows and all(row["admission"] == "tinylfu" for row in rows)

    def test_serving_scale_reaches_device(self):
        # The reduced serving scale must be small enough that Zone-Cache
        # actually flushes regions (at full scale its 4 MiB region buffer
        # would absorb a whole smoke run in RAM).
        scale = _serving_scale()
        assert scale.zone_size <= 512 * KIB
