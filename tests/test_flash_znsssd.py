"""Unit tests for the ZNS SSD simulator."""

import pytest

from repro.errors import (
    AlignmentError,
    OutOfRangeError,
    WritePointerError,
    ZoneResourceError,
    ZoneStateError,
)
from repro.flash import ZnsConfig, ZnsSsd
from repro.flash.zone import ZoneState
from tests.conftest import make_payload

PAGE = 4096


class TestZnsGeometry:
    def test_zone_layout(self, zns_ssd):
        assert zns_ssd.num_zones == 16
        assert zns_ssd.zone_size == 256 * 1024
        assert zns_ssd.capacity_bytes == zns_ssd.num_zones * zns_ssd.zone_size

    def test_no_overprovisioning(self, zns_ssd):
        """ZNS exports the full media — the paper's capacity advantage."""
        assert zns_ssd.capacity_bytes == zns_ssd.config.geometry.total_bytes

    def test_zone_size_must_align_to_blocks(self, clock, small_geometry):
        with pytest.raises(ValueError):
            ZnsSsd(clock, ZnsConfig(geometry=small_geometry, zone_size=PAGE * 3))

    def test_zone_of(self, zns_ssd):
        assert zns_ssd.zone_of(0).index == 0
        assert zns_ssd.zone_of(zns_ssd.zone_size).index == 1
        with pytest.raises(OutOfRangeError):
            zns_ssd.zone_of(zns_ssd.capacity_bytes)


class TestZnsWrites:
    def test_sequential_write_and_read(self, zns_ssd):
        payload = make_payload(2 * PAGE, 3)
        zns_ssd.write(0, payload)
        assert zns_ssd.read(0, 2 * PAGE).data == payload

    def test_write_off_pointer_rejected(self, zns_ssd):
        with pytest.raises(WritePointerError):
            zns_ssd.write(PAGE, make_payload(PAGE, 1))

    def test_write_crossing_zone_rejected(self, zns_ssd):
        zone = zns_ssd.zones[0]
        fill = make_payload(zone.size - PAGE, 1)
        zns_ssd.write(0, fill)
        with pytest.raises(ZoneStateError):
            zns_ssd.write(zone.write_pointer, make_payload(2 * PAGE, 2))

    def test_unaligned_rejected(self, zns_ssd):
        with pytest.raises(AlignmentError):
            zns_ssd.write(0, b"tiny")

    def test_append_returns_offset(self, zns_ssd):
        first = zns_ssd.append(2, make_payload(PAGE, 1))
        second = zns_ssd.append(2, make_payload(PAGE, 2))
        assert first.offset == 2 * zns_ssd.zone_size
        assert second.offset == first.offset + PAGE

    def test_fill_zone_makes_it_full(self, zns_ssd):
        zns_ssd.write(0, make_payload(zns_ssd.zone_size, 5))
        assert zns_ssd.zones[0].state == ZoneState.FULL

    def test_write_to_full_zone_rejected(self, zns_ssd):
        zns_ssd.write(0, make_payload(zns_ssd.zone_size, 5))
        with pytest.raises(ZoneStateError):
            zns_ssd.append(0, make_payload(PAGE, 1))

    def test_zero_wa_always(self, zns_ssd):
        """No device GC -> media writes == host writes, WA == 1."""
        for zone_idx in range(4):
            zns_ssd.write(
                zone_idx * zns_ssd.zone_size, make_payload(zns_ssd.zone_size, zone_idx)
            )
            zns_ssd.reset_zone(zone_idx)
        assert zns_ssd.stats.write_amplification == 1.0


class TestZnsZoneManagement:
    def test_reset_discards_data(self, zns_ssd):
        zns_ssd.write(0, make_payload(PAGE, 9))
        zns_ssd.reset_zone(0)
        assert zns_ssd.zones[0].state == ZoneState.EMPTY
        assert zns_ssd.read(0, PAGE).data == b"\x00" * PAGE

    def test_reset_counts_erases_only_when_dirty(self, zns_ssd):
        zns_ssd.reset_zone(3)
        assert zns_ssd.stats.erase_count == 0
        zns_ssd.write(0, make_payload(PAGE, 1))
        zns_ssd.reset_zone(0)
        assert zns_ssd.stats.erase_count > 0

    def test_finish_zone(self, zns_ssd):
        zns_ssd.write(0, make_payload(PAGE, 1))
        zns_ssd.finish_zone(0)
        assert zns_ssd.zones[0].state == ZoneState.FULL

    def test_max_open_zones_enforced(self, zns_ssd):
        limit = zns_ssd.config.max_open_zones
        for zone_idx in range(limit):
            zns_ssd.write(zone_idx * zns_ssd.zone_size, make_payload(PAGE, 1))
        with pytest.raises(ZoneResourceError):
            zns_ssd.write(limit * zns_ssd.zone_size, make_payload(PAGE, 1))

    def test_close_frees_open_slot(self, zns_ssd):
        limit = zns_ssd.config.max_open_zones
        for zone_idx in range(limit):
            zns_ssd.write(zone_idx * zns_ssd.zone_size, make_payload(PAGE, 1))
        zns_ssd.close_zone(0)
        # One open slot free now, but the closed zone still holds an active slot.
        zns_ssd.write(limit * zns_ssd.zone_size, make_payload(PAGE, 1))
        assert zns_ssd.open_zone_count == limit

    def test_max_active_zones_enforced(self, zns_ssd):
        max_active = zns_ssd.config.max_active_zones
        for zone_idx in range(zns_ssd.config.max_open_zones):
            zns_ssd.write(zone_idx * zns_ssd.zone_size, make_payload(PAGE, 1))
        for zone_idx in range(max_active - zns_ssd.config.max_open_zones):
            zns_ssd.close_zone(zone_idx)
            zns_ssd.write(
                (zns_ssd.config.max_open_zones + zone_idx) * zns_ssd.zone_size,
                make_payload(PAGE, 1),
            )
        # All active slots used (open + closed); a fresh zone must be refused.
        zns_ssd.close_zone(zns_ssd.config.max_open_zones - 1)
        with pytest.raises(ZoneResourceError):
            zns_ssd.write(
                (max_active + 1) * zns_ssd.zone_size, make_payload(PAGE, 1)
            )

    def test_finish_releases_open_slot(self, zns_ssd):
        limit = zns_ssd.config.max_open_zones
        for zone_idx in range(limit):
            zns_ssd.write(zone_idx * zns_ssd.zone_size, make_payload(PAGE, 1))
        zns_ssd.finish_zone(0)
        zns_ssd.write(limit * zns_ssd.zone_size, make_payload(PAGE, 1))

    def test_explicit_open_counts_against_limit(self, zns_ssd):
        limit = zns_ssd.config.max_open_zones
        for zone_idx in range(limit):
            zns_ssd.open_zone(zone_idx)
        with pytest.raises(ZoneResourceError):
            zns_ssd.open_zone(limit)

    def test_report_zones(self, zns_ssd):
        report = zns_ssd.report_zones()
        assert len(report) == zns_ssd.num_zones
        assert all(z.state == ZoneState.EMPTY for z in report)

    def test_bad_zone_index(self, zns_ssd):
        with pytest.raises(OutOfRangeError):
            zns_ssd.reset_zone(zns_ssd.num_zones)


class TestZnsTiming:
    def test_io_advances_clock(self, clock, zns_ssd):
        before = clock.now
        result = zns_ssd.write(0, make_payload(PAGE, 1))
        assert clock.now == before + result.latency_ns

    def test_reset_returns_fast_but_erase_queues_later_io(self, zns_ssd):
        """The reset command is cheap; the media erase runs in the
        background, so the *next* I/O queues behind it."""
        clean_reset = zns_ssd.reset_zone(1).latency_ns
        zns_ssd.write(0, make_payload(PAGE, 1))
        baseline_read = zns_ssd.read(0, PAGE).latency_ns
        dirty_reset = zns_ssd.reset_zone(0).latency_ns
        assert dirty_reset == clean_reset  # command itself is constant-time
        delayed_read = zns_ssd.read(zns_ssd.zone_size, PAGE).latency_ns
        assert delayed_read > baseline_read  # queued behind the erase
