"""White-box tests of HybridCache internals: open-buffer behaviour,
key-set maintenance, region metadata coherence."""


from repro.cache import CacheConfig, HybridCache
from repro.cache.backends import BlockRegionStore
from repro.flash import BlockSsd, BlockSsdConfig, FtlConfig, NandGeometry
from repro.sim import SimClock
from repro.units import KIB

REGION = 16 * KIB


def make_cache(num_regions=8, ram_kib=8, read_from_buffer=True):
    clock = SimClock()
    geometry = NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=128)
    device = BlockSsd(clock, BlockSsdConfig(geometry=geometry, ftl=FtlConfig(0.25)))
    store = BlockRegionStore(device, REGION, num_regions)
    config = CacheConfig(
        region_size=REGION,
        num_regions=num_regions,
        ram_bytes=ram_kib * KIB,
        read_from_buffer=read_from_buffer,
    )
    return HybridCache(clock, store, config), clock, device


class TestOpenBuffer:
    def test_read_from_buffer_serves_without_device_read(self):
        cache, clock, device = make_cache()
        cache.set(b"k", b"v" * 100)
        cache.ram.clear()
        reads_before = device.stats.host_read_bytes
        assert cache.get(b"k") == b"v" * 100
        assert device.stats.host_read_bytes == reads_before  # buffer hit

    def test_read_from_buffer_disabled_goes_to_device(self):
        cache, clock, device = make_cache(read_from_buffer=False)
        cache.set(b"k", b"v" * 100)
        cache.flush()  # must be on flash to be readable at all
        cache.ram.clear()
        reads_before = device.stats.host_read_bytes
        assert cache.get(b"k") == b"v" * 100
        assert device.stats.host_read_bytes > reads_before

    def test_overwrite_in_open_buffer_reads_newest(self):
        cache, *_ = make_cache()
        cache.set(b"k", b"old" * 30)
        cache.set(b"k", b"new" * 30)
        cache.ram.clear()
        assert cache.get(b"k") == b"new" * 30

    def test_flush_empties_buffer_and_seals(self):
        cache, *_ = make_cache()
        cache.set(b"k", b"v")
        sealed_before = cache.regions.sealed_count
        cache.flush()
        assert cache.regions.sealed_count == sealed_before + 1
        assert cache._buffer.used == 0

    def test_flush_of_empty_buffer_is_noop(self):
        cache, *_ = make_cache()
        sealed_before = cache.regions.sealed_count
        cache.flush()
        assert cache.regions.sealed_count == sealed_before


class TestKeySetCoherence:
    def fill_region(self, cache, tag, count=12):
        keys = [f"{tag}-{i:04d}".encode() for i in range(count)]
        for key in keys:
            cache.set(key, b"x" * 1200)
        return keys

    def test_sealed_meta_tracks_inserted_keys(self):
        cache, *_ = make_cache()
        keys = self.fill_region(cache, "a")
        cache.flush()
        sealed = [
            cache.regions.meta(region_id)
            for region_id in range(cache.config.num_regions)
            if cache.regions.meta(region_id) is not None
        ]
        tracked = set().union(*(meta.keys for meta in sealed))
        assert set(keys) <= tracked

    def test_delete_prunes_sealed_meta(self):
        cache, *_ = make_cache()
        keys = self.fill_region(cache, "a")
        cache.flush()
        location = cache.index.get(keys[0])
        cache.delete(keys[0])
        meta = cache.regions.meta(location.region_id)
        assert keys[0] not in meta.keys

    def test_overwrite_moves_key_between_metas(self):
        cache, *_ = make_cache()
        keys = self.fill_region(cache, "a")
        cache.flush()
        old_location = cache.index.get(keys[0])
        cache.set(keys[0], b"y" * 1200)  # now in the open buffer
        meta = cache.regions.meta(old_location.region_id)
        assert keys[0] not in meta.keys
        assert keys[0] in cache._open_keys

    def test_eviction_only_drops_own_keys(self):
        """A key overwritten into a newer region must survive the old
        region's eviction."""
        cache, *_ = make_cache(num_regions=3)
        first = self.fill_region(cache, "a")
        cache.flush()
        survivor = first[0]
        cache.set(survivor, b"fresh" * 200)  # moves to the open region
        # Churn just enough that the survivor's OLD region (the first
        # sealed one) is evicted while its new home region is not.
        for tag in ("b", "c", "d"):
            self.fill_region(cache, tag)
        assert cache.regions.regions_evicted >= 1
        cache.ram.clear()
        assert cache.get(survivor) is not None

    def test_item_count_matches_index(self):
        cache, *_ = make_cache()
        self.fill_region(cache, "a", count=10)
        cache.delete(b"a-0000")
        assert cache.item_count() == len(cache.index)
        assert cache.item_count() == 9
