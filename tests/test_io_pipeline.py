"""Tests for the unified I/O pipeline: pool model, batching, tracing.

Covers four guarantees the refactor makes:

* a serial ``ResourcePool`` (channels=1, queue_depth=1) reproduces
  ``ResourceTimeline`` arithmetic exactly — the seed's golden latency and
  WAF numbers are locked in below;
* wider pools (channels/queue_depth > 1) demonstrably overlap batched
  submissions and cut tail latency;
* the tracer links one cache ``set()`` to the device commands it caused,
  across every scheme stack;
* cross-layer write attribution (``bytes_written_by_layer``) accounts for
  the device's media writes exactly.
"""

import random

import pytest

from repro.bench.experiments import run_fig2_overall
from repro.bench.schemes import SchemeScale, build_scheme
from repro.flash import (
    BlockSsd,
    BlockSsdConfig,
    HddConfig,
    HddDevice,
    NandGeometry,
    ZnsConfig,
    ZnsSsd,
)
from repro.flash.ftl import FtlConfig
from repro.sim import (
    IoOp,
    IoPipeline,
    IoRequest,
    IoTracer,
    PoolConfig,
    ResourcePool,
    ResourceTimeline,
    SimClock,
)
from repro.units import KIB, MIB


class TestPoolConfig:
    def test_defaults_are_serial(self):
        config = PoolConfig()
        assert config.channels == 1
        assert config.queue_depth == 1
        assert config.total_slots == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"channels": 0},
            {"channels": -2},
            {"queue_depth": 0},
            {"stripe_bytes": -1},
        ],
    )
    def test_invalid_shapes_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PoolConfig(**kwargs)

    def test_total_slots(self):
        assert PoolConfig(channels=4, queue_depth=8).total_slots == 32


class TestResourcePoolSerial:
    """A 1×1 pool must be bit-identical to the old serial timeline."""

    def test_random_workload_matches_timeline(self):
        rng = random.Random(42)
        pool = ResourcePool()
        line = ResourceTimeline()
        now = 0
        for _ in range(500):
            now += rng.randrange(0, 2_000)
            service = rng.randrange(0, 5_000)
            if rng.random() < 0.3:
                done_pool, _, channel = pool.reserve_background(now, service)
                done_line = line.reserve_background(now, service)
            else:
                done_pool, _, channel = pool.acquire(now, service)
                done_line = line.acquire(now, service)
            assert done_pool == done_line
            assert channel == 0
            assert pool.busy_until == line.busy_until
            assert pool.wait_time(now) == line.wait_time(now)
        assert pool.total_busy_ns == line.total_busy_ns
        assert pool.total_wait_ns == line.total_wait_ns

    def test_background_wait_not_charged(self):
        pool = ResourcePool()
        pool.acquire(0, 100)
        pool.reserve_background(40, 200)
        assert pool.total_wait_ns == 0
        done, wait, _ = pool.acquire(150, 10)
        assert done == 310 and wait == 150
        assert pool.total_wait_ns == 150

    def test_negative_service_rejected(self):
        pool = ResourcePool()
        with pytest.raises(ValueError):
            pool.acquire(0, -1)
        with pytest.raises(ValueError):
            pool.reserve_background(0, -1)


class TestResourcePoolParallel:
    def test_two_channels_overlap(self):
        pool = ResourcePool(config=PoolConfig(channels=2))
        done_a, wait_a, ch_a = pool.acquire(0, 100)
        done_b, wait_b, ch_b = pool.acquire(0, 100)
        assert (done_a, wait_a) == (100, 0)
        assert (done_b, wait_b) == (100, 0)
        assert {ch_a, ch_b} == {0, 1}

    def test_queue_depth_slots_overlap_within_channel(self):
        pool = ResourcePool(config=PoolConfig(channels=1, queue_depth=2))
        assert pool.acquire(0, 100)[0] == 100
        assert pool.acquire(0, 100)[0] == 100
        # Third request finds both slots busy and queues.
        done, wait, _ = pool.acquire(0, 100)
        assert done == 200 and wait == 100

    def test_stripe_routes_by_offset(self):
        pool = ResourcePool(config=PoolConfig(channels=4, stripe_bytes=4096))
        for i in range(8):
            _, _, channel = pool.acquire(0, 10, offset=i * 4096)
            assert channel == i % 4

    def test_burst_p99_drops_with_queue_depth(self):
        """The headline parallelism claim: deeper queues cut tail latency."""

        def burst_latencies(config):
            pool = ResourcePool(config=config)
            return sorted(pool.acquire(0, 1_000)[0] - 0 for _ in range(16))

        serial = burst_latencies(PoolConfig())
        deep = burst_latencies(PoolConfig(queue_depth=4))
        # p99 ~ max of the 16-burst here.
        assert serial[-1] == 16_000
        assert deep[-1] == 4_000
        assert deep[-1] < serial[-1]

    def test_utilization_accounts_all_channels(self):
        pool = ResourcePool(config=PoolConfig(channels=2))
        pool.acquire(0, 100)
        pool.acquire(0, 100)
        assert pool.utilization(100) == pytest.approx(1.0)
        assert pool.utilization(200) == pytest.approx(0.5)

    def test_snapshot_keys(self):
        pool = ResourcePool(config=PoolConfig(channels=2, queue_depth=3))
        pool.acquire(0, 10)
        snap = pool.snapshot()
        assert snap["channels"] == 2
        assert snap["queue_depth"] == 3
        assert snap["requests"] == 1
        assert snap["total_busy_ns"] == 10


class TestIoPipeline:
    def test_foreground_advances_clock(self):
        clock = SimClock()
        pipeline = IoPipeline(clock)
        completion = pipeline.submit(IoRequest(IoOp.WRITE, 0, 4096), 500)
        assert clock.now == 500
        assert completion.latency_ns == 500
        assert completion.wait_ns == 0
        assert completion.service_ns == 500

    def test_background_reserves_without_blocking(self):
        clock = SimClock()
        pipeline = IoPipeline(clock)
        completion = pipeline.submit(
            IoRequest(IoOp.GC, background=True), 1_000
        )
        assert clock.now == 0
        assert completion.latency_ns == 0
        assert pipeline.pool.busy_until == 1_000
        # The next foreground command queues behind the reservation.
        completion = pipeline.submit(IoRequest(IoOp.READ), 100)
        assert completion.wait_ns == 1_000
        assert clock.now == 1_100

    def test_submit_many_serial_equals_loop(self):
        """On a serial pool a batch is arithmetically a synchronous loop."""
        batch = [(IoRequest(IoOp.WRITE, i * 4096, 4096), 300 + i) for i in range(10)]
        loop_clock = SimClock()
        loop_pipeline = IoPipeline(loop_clock)
        for request, service in [
            (IoRequest(IoOp.WRITE, i * 4096, 4096), 300 + i) for i in range(10)
        ]:
            loop_pipeline.submit(request, service)
        batch_clock = SimClock()
        batch_pipeline = IoPipeline(batch_clock)
        completions = batch_pipeline.submit_many(batch)
        assert batch_clock.now == loop_clock.now
        assert completions[-1].completed_ns == loop_clock.now
        assert (
            batch_pipeline.pool.total_busy_ns == loop_pipeline.pool.total_busy_ns
        )

    def test_submit_many_pipelines_across_channels(self):
        serial_clock = SimClock()
        serial = IoPipeline(serial_clock, config=PoolConfig())
        serial.submit_many(
            [(IoRequest(IoOp.WRITE, i * 4096, 4096), 1_000) for i in range(8)]
        )
        wide_clock = SimClock()
        wide = IoPipeline(wide_clock, config=PoolConfig(channels=4))
        wide.submit_many(
            [(IoRequest(IoOp.WRITE, i * 4096, 4096), 1_000) for i in range(8)]
        )
        assert serial_clock.now == 8_000
        assert wide_clock.now == 2_000

    def test_batch_mixes_background_and_foreground(self):
        clock = SimClock()
        pipeline = IoPipeline(clock)
        completions = pipeline.submit_many(
            [
                (IoRequest(IoOp.WRITE, 0, 4096), 100),
                (IoRequest(IoOp.GC, background=True), 10_000),
                (IoRequest(IoOp.WRITE, 4096, 4096), 100),
            ]
        )
        # Barrier is the last *foreground* completion; the background
        # reservation extends the pool, not the clock.
        assert clock.now == 10_200
        assert completions[1].latency_ns == 0
        assert pipeline.pool.busy_until == 10_200

    def test_requests_parented_to_open_span(self):
        clock = SimClock()
        tracer = IoTracer(clock).enable()
        pipeline = IoPipeline(clock, tracer=tracer)
        with tracer.span("backend", "write_region", length=4096):
            pipeline.submit(IoRequest(IoOp.WRITE, 0, 4096, layer="zns"), 100)
        write = tracer.find(layer="zns", op="write")[0]
        assert tracer.layer_chain(write.record_id) == ["backend", "zns"]

    def test_disabled_tracer_records_nothing(self):
        clock = SimClock()
        pipeline = IoPipeline(clock)
        with pipeline.tracer.span("engine", "set"):
            pipeline.submit(IoRequest(IoOp.WRITE, 0, 4096), 100)
        assert len(pipeline.tracer) == 0


class TestDeviceParallelism:
    """channels > 1 visibly changes device-level tail latency."""

    def _fill_zone(self, io):
        clock = SimClock()
        device = ZnsSsd(
            clock,
            ZnsConfig(geometry=NandGeometry(num_blocks=64)),
            io=io,
        )
        zone = device.zones[0]
        page = device.block_size
        items = [
            (zone.start + i * page, bytes([i % 251]) * page)
            for i in range(device.zone_size // page)
        ]
        device.write_many(items)
        return clock.now, device.stats.write_latency.p99()

    def test_channels_cut_zone_fill_time_and_p99(self):
        serial_ns, serial_p99 = self._fill_zone(PoolConfig())
        wide_ns, wide_p99 = self._fill_zone(PoolConfig(channels=4, queue_depth=2))
        assert wide_ns < serial_ns
        assert wide_p99 < serial_p99
        # 8 slots should shrink the batch barrier close to 8x.
        assert wide_ns <= serial_ns // 4


class TestGoldenSeed:
    """Golden values captured from the seed's serial model.

    The default PoolConfig must reproduce them bit-for-bit: any drift
    here means the pipeline changed simulated physics, not just plumbing.
    """

    def test_blockssd_golden(self):
        clock = SimClock()
        device = BlockSsd(
            clock,
            BlockSsdConfig(
                geometry=NandGeometry(num_blocks=64),
                ftl=FtlConfig(op_ratio=0.25),
            ),
        )
        rng = random.Random(11)
        block = device.block_size
        blocks = device.capacity_bytes // block
        for i in range(4 * blocks):
            device.write(rng.randrange(blocks) * block, bytes([i % 251]) * block)
        assert clock.now == 9_515_826_972
        assert device.stats.media_write_bytes == 92_323_840
        assert device.stats.erase_count == 296
        assert device.stats.write_latency.p99() == 615_276
        assert device.stats.gc_runs == 32

    def test_zns_golden(self):
        clock = SimClock()
        device = ZnsSsd(clock, ZnsConfig(geometry=NandGeometry(num_blocks=64)))
        for rep in range(3):
            for index in range(device.num_zones):
                zone = device.zones[index]
                if zone.written_bytes > 0 or rep > 0:
                    device.reset_zone(index)
                device.write(zone.start, b"z" * device.zone_size)
        assert clock.now == 1_346_089_316
        assert device.stats.media_write_bytes == 50_331_648
        assert device.stats.erase_count == 128
        assert device.stats.write_latency.p99() == 128_171_443

    def test_hdd_golden(self):
        clock = SimClock()
        device = HddDevice(clock, HddConfig(capacity_bytes=64 * MIB), seed=7)
        rng = random.Random(5)
        blocks = device.capacity_bytes // device.block_size
        for i in range(200):
            offset = rng.randrange(blocks) * device.block_size
            if i % 2 == 0:
                device.read(offset, device.block_size)
            else:
                device.write(offset, b"h" * device.block_size)
        assert clock.now == 2_152_060_005
        assert device.stats.read_latency.p99() == 16_055_567
        assert device.stats.write_latency.p99() == 15_999_019

    @pytest.mark.slow
    def test_fig2_golden(self):
        rows = run_fig2_overall(zones=12, cache_zones=9, file_zones=18, num_ops=4000)
        expected = {
            "Block-Cache": dict(
                cache_mib=36.0,
                get_p99_us=83.453,
                hit_ratio=0.8438775510204082,
                set_p99_us=1796.701,
                throughput_mops_per_min=1.6520145648141498,
                waf_app=1.0,
                waf_device=1.640625,
            ),
            "File-Cache": dict(
                cache_mib=36.0,
                get_p99_us=127.453,
                hit_ratio=0.8438775510204082,
                set_p99_us=2663.977,
                throughput_mops_per_min=1.6990825723549836,
                waf_app=1.078125,
                waf_device=1.0,
            ),
            "Region-Cache": dict(
                cache_mib=36.0,
                get_p99_us=11150.904,
                hit_ratio=0.8438775510204082,
                set_p99_us=1732.821,
                throughput_mops_per_min=0.4709803702141237,
                waf_app=8.805555555555555,
                waf_device=1.0,
            ),
            "Zone-Cache": dict(
                cache_mib=48.0,
                get_p99_us=75.453,
                hit_ratio=0.8811224489795918,
                set_p99_us=1.36,
                throughput_mops_per_min=0.926339694528708,
                waf_app=1.0,
                waf_device=1.0,
            ),
        }
        assert len(rows) == len(expected)
        for row in rows:
            want = expected[row["scheme"]]
            for key, value in want.items():
                assert row[key] == pytest.approx(value, rel=1e-9), (
                    f"{row['scheme']}.{key}"
                )
            # The new per-device report columns ride along on every row.
            assert row["io_channels"] == 1
            assert row["io_queue_depth"] == 1
            assert row["dev_wait_ms"] >= 0.0
            assert row["dev_busy_ms"] > 0.0
            assert 0.0 < row["dev_util"] <= 1.0


SMALL_SCALE = SchemeScale(
    zone_size=1 * MIB,
    region_size=16 * KIB,
    pages_per_block=64,
    ram_bytes=64 * KIB,
)

TRACE_CASES = [
    # (scheme, media_bytes, cache_bytes, expected set() chain)
    ("Block-Cache", 16 * MIB, 8 * MIB, ["engine", "backend", "block"]),
    ("Zone-Cache", 16 * MIB, 16 * MIB, ["engine", "backend", "zns"]),
    ("Region-Cache", 16 * MIB, 8 * MIB, ["engine", "backend", "ztl", "zns"]),
    ("File-Cache", 32 * MIB, 8 * MIB, ["engine", "backend", "f2fs", "zns"]),
]


class TestEndToEndTrace:
    """One cache set() yields a causally-linked chain down to the device."""

    @pytest.mark.parametrize(
        "scheme,media_bytes,cache_bytes,expected",
        TRACE_CASES,
        ids=[case[0] for case in TRACE_CASES],
    )
    def test_set_chain(self, scheme, media_bytes, cache_bytes, expected):
        clock = SimClock()
        stack = build_scheme(scheme, clock, SMALL_SCALE, media_bytes, cache_bytes)
        tracer = stack.cache.store.tracer
        tracer.enable()
        value = b"v" * (stack.cache.config.region_size // 8)
        i = 0
        while stack.cache.stats.flushes == 0:
            stack.cache.set(f"key-{i}".encode(), value)
            i += 1
            assert i < 10_000, "cache never flushed a region"
        device_layer = expected[-1]
        writes = [
            record
            for record in tracer.records
            if record.layer == device_layer and record.op in ("write", "append")
        ]
        assert writes, f"no device writes traced for {scheme}"
        chains = {tuple(tracer.layer_chain(r.record_id)) for r in writes}
        assert tuple(expected) in chains
        # Attribution query sees the host's media writes under the device.
        assert tracer.bytes_written_by_layer()[device_layer] > 0

    def test_get_chain_on_flash_hit(self):
        clock = SimClock()
        stack = build_scheme("Block-Cache", clock, SMALL_SCALE, 16 * MIB, 8 * MIB)
        cache = stack.cache
        value = b"v" * (cache.config.region_size // 8)
        # Fill past the RAM tier so early keys are only on flash.
        for i in range(200):
            cache.set(f"key-{i}".encode(), value)
        tracer = cache.store.tracer
        tracer.enable()
        assert cache.get(b"key-0") == value
        reads = tracer.find(layer="block", op="read")
        assert reads
        assert tracer.layer_chain(reads[-1].record_id) == [
            "engine",
            "backend",
            "block",
        ]


class TestWafAttribution:
    """bytes_written_by_layer decomposes media writes exactly."""

    def test_ftl_gc_traffic_attributed(self):
        clock = SimClock()
        tracer = IoTracer().enable()
        device = BlockSsd(
            clock,
            BlockSsdConfig(
                geometry=NandGeometry(num_blocks=64),
                ftl=FtlConfig(op_ratio=0.25),
            ),
            tracer=tracer,
        )
        rng = random.Random(3)
        block = device.block_size
        blocks = device.capacity_bytes // block
        for i in range(4 * blocks):
            device.write(rng.randrange(blocks) * block, bytes([i % 251]) * block)
        by_layer = tracer.bytes_written_by_layer()
        assert by_layer["block"] == device.stats.host_write_bytes
        assert by_layer["ftl.gc"] > 0
        assert (
            by_layer["block"] + by_layer["ftl.gc"]
            == device.stats.media_write_bytes
        )


class TestFaultGolden:
    """Fault injection is fully deterministic: the same workload seed and
    the same fault plan reproduce every bench column bit-for-bit —
    including the fault/retry accounting and the sim-clock-derived
    latencies that injected spikes perturb."""

    def test_fault_sweep_rows_reproduce_exactly(self):
        from repro.bench.experiments import run_fault_sweep

        kwargs = dict(
            num_ops=2500,
            num_keys=2500,
            zones=12,
            cache_zones=8,
            file_zones=20,
            schemes=("Region-Cache", "Block-Cache"),
        )
        first = run_fault_sweep(**kwargs)
        second = run_fault_sweep(**kwargs)
        assert first == second
        for row in first:
            assert row["faults_injected"] > 0, row["scheme"]
            assert row["recovery_ms"] == 0.0  # no crash in this sweep

    def test_disabled_injector_matches_no_injector(self):
        from repro.sim import FaultInjector, FaultKind, FaultRule

        # A disabled injector must leave the golden numbers untouched:
        # the gate returns before any RNG draw, so the run is
        # bit-identical to one with no injector wired in at all.
        def run(faults):
            clock = SimClock()
            stack = build_scheme(
                "Block-Cache", clock, SMALL_SCALE, 16 * MIB, 8 * MIB, faults=faults
            )
            cache = stack.cache
            rng = random.Random(2)
            for i in range(1500):
                key = f"key{rng.randrange(200):04d}".encode()
                if rng.random() < 0.5:
                    cache.set(key, f"v{i}".encode() * 150)
                else:
                    cache.get(key)
            return clock.now, cache.stats.snapshot()

        disabled = FaultInjector(
            seed=99, rules=(FaultRule(FaultKind.MEDIA_ERROR, probability=0.5),)
        )
        disabled.disable()
        assert run(None) == run(disabled)
        assert disabled.stats.total_injected == 0
