"""Full-stack §3.4 hint coverage (the hint-protocol PR).

Four layers of assurance:

* the :class:`~repro.reclaim.GcHints` protocol at the engine level —
  hint-bearing sources' ``DROPPED`` outcomes are accounted separately
  and emit one ``reclaim.<layer>`` drop span each;
* the two newly-hinted reclamation layers: the F2FS cleaner's
  block-drop path (SIT/NAT unmap, metadata stays fsck-clean) and the
  FTL's region discard-ahead;
* the scheme builders: ``hint_layers="all"`` binds hints into the
  substrate, the historical ``"ztl"`` value leaves the new layers
  unhinted (bit-compat);
* the serving side: the gc_aware diversion journal recovers hits the
  journal-less router lost, and the adaptive pacer's ``"e2e_p99"``
  signal consumes tenant-observed latency instead of device stall;
* end to end: a small ``run_hint_sweep`` grid reconciles
  ``gc_hint_dropped_units`` against the per-layer drop spans exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.schemes import (
    SchemeScale,
    build_block_cache,
    build_file_cache,
)
from repro.cache.lifecycle import LifecycleConfig
from repro.errors import CacheConfigError, ConfigError
from repro.f2fs import CleanerConfig, F2fs, F2fsConfig, VictimPolicy, fsck
from repro.flash import NandGeometry, NullBlkDevice, ZnsConfig, ZnsSsd
from repro.flash.ftl import FtlConfig, PageMappedFtl
from repro.reclaim import (
    AdaptivePacingConfig,
    GcHints,
    GreedyPolicy,
    PacerConfig,
    ReclaimEngine,
    ReclaimPacer,
    ReclaimSource,
    UnitOutcome,
    VictimView,
)
from repro.serve import (
    PRESSURE_RANK,
    CacheCluster,
    RoutingConfig,
    Server,
    ServerConfig,
    TenantConfig,
)
from repro.sim import SimClock
from repro.sim.io import IoTracer
from repro.units import KIB, MIB
from repro.workloads.cachebench import CacheBenchConfig

PAGE = 4 * KIB

SCALE = SchemeScale(
    zone_size=256 * KIB, region_size=16 * KIB, pages_per_block=16,
    ram_bytes=32 * KIB,
)


# --------------------------------------------------------------------------
# GcHints at the engine level
# --------------------------------------------------------------------------

class _HintedSource(ReclaimSource):
    """Scripted source that consults its hints like the real layers do."""

    name = "fake"
    unit_bytes = 10

    def __init__(self, victims, free=0):
        self.victims = {vid: list(units) for vid, units in victims.items()}
        self.free = free
        self.dropped = []

    def free_units(self):
        return self.free

    def candidate_views(self):
        return [
            VictimView(vid, len(units), len(units) / 8, 0)
            for vid, units in sorted(self.victims.items())
        ]

    def pending_units(self, victim_id):
        return list(reversed(self.victims[victim_id]))

    def migrate_unit(self, victim_id, unit):
        if self.hints is not None and not self.hints.migration_worth(unit):
            self.hints.on_drop(unit)
            self.dropped.append(unit)
            return UnitOutcome.DROPPED
        return UnitOutcome.MIGRATED

    def release_victim(self, victim_id):
        del self.victims[victim_id]

    def flush_step(self):
        pass


def _engine(source, tracer=None):
    return ReclaimEngine(
        source,
        GreedyPolicy(),
        ReclaimPacer(PacerConfig(background=1, target=1)),
        tracer=tracer if tracer is not None else IoTracer(),
    )


class TestEngineHintProtocol:
    def test_hint_drops_accounted_separately_from_copies(self):
        source = _HintedSource({1: [10, 11, 12]}, free=0)
        dropped = []
        source.hints = GcHints(lambda unit: unit != 11, dropped.append)
        engine = _engine(source)
        engine.collect()
        assert engine.stats.units_migrated == 2
        assert engine.stats.units_dropped == 1
        assert engine.stats.hint_dropped_units == 1
        assert engine.stats.copied_bytes == 2 * source.unit_bytes
        assert dropped == [11]

    def test_each_hint_drop_emits_one_span(self):
        tracer = IoTracer(SimClock()).enable()
        source = _HintedSource({1: [10, 11]}, free=0)
        source.hints = GcHints(lambda unit: False, lambda unit: None)
        engine = _engine(source, tracer=tracer)
        engine.collect()
        drops = tracer.find(layer="reclaim.fake", op="drop")
        assert len(drops) == engine.stats.hint_dropped_units == 2

    def test_drops_without_hints_are_not_hint_drops(self):
        # A source may drop units for its own reasons (stale entries);
        # only hint-bearing sources' drops count toward the §3.4 tally.
        class _PlainDropper(_HintedSource):
            def migrate_unit(self, victim_id, unit):
                return UnitOutcome.DROPPED

        source = _PlainDropper({1: [10, 11]}, free=0)
        engine = _engine(source)
        engine.collect()
        assert engine.stats.units_dropped == 2
        assert engine.stats.hint_dropped_units == 0


# --------------------------------------------------------------------------
# F2FS cleaner: block-run → region ownership → drop instead of migrate
# --------------------------------------------------------------------------

def _make_fs():
    clock = SimClock()
    geometry = NandGeometry(page_size=PAGE, pages_per_block=16, num_blocks=256)
    zns = ZnsSsd(clock, ZnsConfig(geometry=geometry, zone_size=8 * geometry.block_size))
    meta = NullBlkDevice(clock, capacity_bytes=8 * MIB)
    fs = F2fs(
        clock, zns, meta,
        F2fsConfig(checkpoint_interval_blocks=1 << 30),
        CleanerConfig(low_watermark=3, pace_blocks=8,
                      policy=VictimPolicy.COST_BENEFIT),
    )
    fs.mkfs()
    return fs


class TestF2fsCleanerHints:
    REGION_BLOCKS = 4  # 16 KiB regions over 4 KiB filesystem blocks

    def _bind(self, fs, handle, migration_worth, dropped):
        def region_of_block(block_addr):
            owner = fs.sit.owner_of(block_addr)
            if owner is None:
                return None
            owner_id, file_block = owner
            if owner_id != handle.file_id:
                return None
            return file_block // self.REGION_BLOCKS

        fs.cleaner.bind_hints(
            GcHints(migration_worth, dropped.append),
            region_of_block,
            fs._drop_block,
        )

    def _churn(self, fs, handle, blocks=5000, spread=600, seed=5):
        rng = random.Random(seed)
        for step in range(blocks):
            handle.pwrite(
                rng.randrange(spread) * PAGE, bytes([step % 251 + 1]) * PAGE
            )

    def test_condemned_regions_drop_instead_of_migrate(self):
        fs = _make_fs()
        handle = fs.create("data")
        dropped = []
        self._bind(fs, handle, lambda region_id: False, dropped)
        self._churn(fs, handle)
        stats = fs.cleaner.engine.stats
        assert stats.hint_dropped_units > 0
        assert stats.hint_dropped_units == stats.units_dropped
        # Everything the file owned was condemned: the cleaner moved no
        # data blocks for it, and dropping left the metadata coherent.
        assert dropped
        assert fs.cleaner.sections_cleaned > 0
        assert fsck(fs).clean

    def test_worthy_regions_still_migrate(self):
        fs = _make_fs()
        handle = fs.create("data")
        dropped = []
        self._bind(fs, handle, lambda region_id: True, dropped)
        self._churn(fs, handle)
        stats = fs.cleaner.engine.stats
        assert stats.hint_dropped_units == 0
        assert stats.units_migrated > 0
        assert not dropped
        assert fsck(fs).clean

    def test_drop_consistency_under_selective_condemnation(self):
        # Condemn only even regions: a mixed victim section drops some
        # blocks and migrates the rest, and the filesystem stays clean.
        fs = _make_fs()
        handle = fs.create("data")
        dropped = []
        self._bind(fs, handle, lambda region_id: region_id % 2 == 1, dropped)
        self._churn(fs, handle)
        stats = fs.cleaner.engine.stats
        assert stats.hint_dropped_units > 0
        assert stats.units_migrated > 0
        assert all(region_id % 2 == 0 for region_id in dropped)
        assert fsck(fs).clean


# --------------------------------------------------------------------------
# FTL: discard-ahead of condemned regions
# --------------------------------------------------------------------------

def _make_ftl():
    geometry = NandGeometry(page_size=PAGE, pages_per_block=8, num_blocks=32)
    return PageMappedFtl(geometry, FtlConfig(0.25, 2, 4))


class TestFtlDiscardAhead:
    REGION_PAGES = 4

    def test_bind_hints_validates_region_alignment(self):
        ftl = _make_ftl()
        with pytest.raises(ConfigError):
            ftl.bind_hints(
                GcHints(lambda r: True, lambda r: None), PAGE + 1, 4
            )

    def test_condemned_regions_discarded_not_copied(self):
        ftl = _make_ftl()
        ftl.write_pages(list(range(ftl.logical_pages)))
        dropped = []
        num_regions = ftl.logical_pages // self.REGION_PAGES
        ftl.bind_hints(
            GcHints(lambda region_id: False, dropped.append),
            self.REGION_PAGES * PAGE,
            num_regions,
        )
        rng = random.Random(11)
        for _ in range(ftl.logical_pages * 4):
            ftl.write_pages([rng.randrange(ftl.logical_pages)])
        stats = ftl.reclaim.stats
        assert stats.hint_dropped_units > 0
        # Nothing was ever worth copying, so GC moved zero pages and the
        # device WA collapses to 1.0.
        assert ftl.total_moved_pages == 0
        assert ftl.write_amplification == 1.0
        assert dropped

    def test_discard_ahead_unmaps_the_whole_region(self):
        ftl = _make_ftl()
        ftl.write_pages(list(range(ftl.logical_pages)))
        dropped = []
        num_regions = ftl.logical_pages // self.REGION_PAGES
        ftl.bind_hints(
            GcHints(lambda region_id: False, dropped.append),
            self.REGION_PAGES * PAGE,
            num_regions,
        )
        # Random rewrites until GC condemns its first region, then stop:
        # the discard must have unmapped the region's whole logical
        # range.  Only the write that triggered the collection may have
        # remapped one of its pages afterwards.
        rng = random.Random(11)
        last = None
        for _ in range(ftl.logical_pages * 8):
            if dropped:
                break
            last = rng.randrange(ftl.logical_pages)
            ftl.write_pages([last])
        assert dropped
        start = dropped[0] * self.REGION_PAGES
        for lpn in range(start, start + self.REGION_PAGES):
            if lpn != last:
                assert ftl.physical_of(lpn) is None

    def test_worthy_regions_unaffected(self):
        template, hinted = _make_ftl(), _make_ftl()
        hinted.bind_hints(
            GcHints(lambda region_id: True, lambda region_id: None),
            self.REGION_PAGES * PAGE,
            hinted.logical_pages // self.REGION_PAGES,
        )
        for ftl in (template, hinted):
            rng = random.Random(11)
            ftl.write_pages(list(range(ftl.logical_pages)))
            for _ in range(ftl.logical_pages * 4):
                ftl.write_pages([rng.randrange(ftl.logical_pages)])
        # All-worthy hints are bit-identical to no hints at all.
        assert hinted.total_moved_pages == template.total_moved_pages
        assert hinted.total_erased_blocks == template.total_erased_blocks
        assert hinted.reclaim.stats.hint_dropped_units == 0


# --------------------------------------------------------------------------
# Builder wiring: hint_layers gates the substrate bindings
# --------------------------------------------------------------------------

class TestBuilderWiring:
    def _lifecycle(self, **kwargs):
        return LifecycleConfig(versioning=True, gc_hints=True, **kwargs)

    def test_hint_layers_validated(self):
        with pytest.raises(CacheConfigError):
            LifecycleConfig(hint_layers="ftl-only")

    def test_block_cache_full_binds_ftl_hints(self):
        stack = build_block_cache(
            SimClock(), SCALE, 16 * 256 * KIB, 8 * 256 * KIB,
            lifecycle=self._lifecycle(hint_layers="all"),
        )
        source = stack.substrate["device"].ftl.reclaim.source
        assert source.hints is not None
        assert source.hints.migration_worth == stack.cache.migration_worth

    def test_block_cache_ztl_only_leaves_ftl_unhinted(self):
        # The historical hint wiring stops at the ZTL; a block SSD's FTL
        # only joins in under hint_layers="all".
        stack = build_block_cache(
            SimClock(), SCALE, 16 * 256 * KIB, 8 * 256 * KIB,
            lifecycle=self._lifecycle(hint_layers="ztl"),
        )
        assert stack.substrate["device"].ftl.reclaim.source.hints is None

    def test_file_cache_full_binds_cleaner_hints(self):
        stack = build_file_cache(
            SimClock(), SCALE, 16 * 256 * KIB, 6 * 256 * KIB,
            lifecycle=self._lifecycle(hint_layers="all"),
        )
        fs = stack.substrate["fs"]
        assert fs.cleaner.engine.source.hints is not None

    def test_hints_off_binds_nothing(self):
        stack = build_file_cache(
            SimClock(), SCALE, 16 * 256 * KIB, 6 * 256 * KIB,
            lifecycle=LifecycleConfig(versioning=True, gc_hints=False,
                                      hint_layers="all"),
        )
        assert stack.substrate["fs"].cleaner.engine.source.hints is None


# --------------------------------------------------------------------------
# Diversion journal: gc_aware reroutes stay readable
# --------------------------------------------------------------------------

def _zone_cluster(num_shards=3, routing=None):
    return CacheCluster.homogeneous(
        "Zone-Cache",
        num_shards,
        8 * SCALE.zone_size,
        None,
        scale=SCALE,
        cache_overrides=(("eviction_policy", "fifo"),),
        routing=routing,
    )


def _tenant(name, rate, num_ops, seed=3, get_ratio=0.5, set_ratio=0.5):
    workload = CacheBenchConfig(
        num_ops=num_ops, num_keys=120, get_ratio=get_ratio,
        set_ratio=set_ratio, delete_ratio=0.0, seed=seed,
    )
    return TenantConfig(name, rate_ops_per_sec=rate, workload=workload,
                        slo_p99_ms=5.0, seed=seed + 7)


class TestDiversionJournal:
    def test_requires_gc_aware_policy(self):
        with pytest.raises(ConfigError):
            RoutingConfig(policy="static", diversion_journal=True)

    def test_reroutes_are_journaled_and_home_rewrite_expires(self):
        cluster = _zone_cluster(
            routing=RoutingConfig(policy="gc_aware", diversion_journal=True)
        )
        pressured = cluster.shards[0]
        pressured.pressure_rank = lambda: PRESSURE_RANK["emergency"]
        journaled = []
        for i in range(100):
            key = f"k{i}".encode()
            shard, home = cluster.route_for(key, is_write=True)
            if home is not None:
                assert cluster.diversions[key] is shard
                journaled.append(key)
        assert journaled
        assert cluster.diversions_recorded == len(journaled)
        # Pressure clears; the next home write supersedes the diversion.
        del pressured.pressure_rank
        shard, home = cluster.route_for(journaled[0], is_write=True)
        assert home is None and shard is cluster.shard_for(journaled[0])
        assert journaled[0] not in cluster.diversions

    def _run_pair(self, journal):
        cluster = _zone_cluster(
            routing=RoutingConfig(policy="gc_aware", diversion_journal=journal)
        )
        cluster.shards[0].pressure_rank = lambda: PRESSURE_RANK["emergency"]
        report = Server(
            cluster, [_tenant("w", 50_000.0, 1200)], ServerConfig()
        ).run()
        return cluster, report

    def test_journal_recovers_hits_the_plain_router_loses(self):
        # The PR 6 regression pair: same seed, same pressure, journal
        # off vs on.  Rerouted writes are invisible to ring-faithful
        # reads without the journal, so enabling it must strictly raise
        # the tenant's hit ratio — and actually exercise the journal.
        plain_cluster, plain = self._run_pair(journal=False)
        journal_cluster, journaled = self._run_pair(journal=True)
        assert sum(r["rerouted_out"] for r in plain.shard_rows) > 0
        assert journal_cluster.diversions_recovered > 0
        assert (
            journaled.tenant_rows[0]["hit_ratio"]
            > plain.tenant_rows[0]["hit_ratio"]
        )
        assert (
            journal_cluster.diversions_recorded
            >= journal_cluster.diversions_recovered
        )

    def test_journal_is_inert_without_reroutes(self):
        # No pressure → no diversions → the journal-on run must be
        # draw-for-draw identical to the journal-off run.
        reports = []
        for journal in (False, True):
            cluster = _zone_cluster(
                routing=RoutingConfig(policy="gc_aware",
                                      diversion_journal=journal)
            )
            reports.append(
                Server(
                    cluster, [_tenant("w", 50_000.0, 600)], ServerConfig()
                ).run()
            )
            assert cluster.diversions_recorded == 0
        assert reports[0].tenant_rows == reports[1].tenant_rows
        assert reports[0].shard_rows == reports[1].shard_rows


# --------------------------------------------------------------------------
# Adaptive pacing on the tenant-observed e2e p99 signal
# --------------------------------------------------------------------------

class TestE2eP99Signal:
    def _adaptive(self, **kwargs):
        defaults = dict(stall_slo_ns=1000, interval_steps=1,
                        signal="e2e_p99")
        defaults.update(kwargs)
        return AdaptivePacingConfig(**defaults)

    def test_signal_validated(self):
        with pytest.raises(ValueError):
            AdaptivePacingConfig(stall_slo_ns=1000, signal="vibes")

    def test_external_samples_only_recorded_when_consumed(self):
        static = ReclaimPacer(PacerConfig(pace_units=4))
        static.note_external_latency(500)
        assert static.external.count == 0  # no controller: no-op

        stall = ReclaimPacer(
            PacerConfig(pace_units=4),
            AdaptivePacingConfig(stall_slo_ns=1000, signal="stall"),
        )
        stall.note_external_latency(500)
        assert stall.external.count == 0  # stall signal ignores the feed

        e2e = ReclaimPacer(PacerConfig(pace_units=4), self._adaptive())
        e2e.note_external_latency(500)
        assert e2e.external.count == 1

    def test_controller_clamps_on_e2e_latency_not_stall(self):
        pacer = ReclaimPacer(PacerConfig(pace_units=4), self._adaptive())
        # Device stall is screaming but the tenants are fine: relax.
        pacer.stall.record(10_000_000)
        pacer.observe_step()
        assert pacer.pace_units == 5
        # Tenants over budget: clamp, and the window resets after.
        pacer.note_external_latency(5000)
        pacer.observe_step()
        assert pacer.pace_units == 2
        assert pacer.external.count == 0
        # Empty external window = under budget (no news is good news).
        pacer.observe_step()
        assert pacer.pace_units == 3

    def test_server_feeds_completion_latency_per_shard(self):
        cluster = CacheCluster.homogeneous(
            "Region-Cache", 2, 10 * SCALE.zone_size, 5 * SCALE.zone_size,
            scale=SCALE, cache_overrides=(("eviction_policy", "fifo"),),
        )
        pacers = []
        for shard in cluster.shards:
            assert shard.stack.enable_adaptive_pacing(
                self._adaptive(interval_steps=1_000_000)
            )
            pacers.append(shard.stack.reclaim_engine()[1].pacer)
        Server(cluster, [_tenant("w", 50_000.0, 400)], ServerConfig()).run()
        # The giant interval means no window ever reset: every completed
        # op fed exactly one sample to its serving shard's pacer.
        for shard, pacer in zip(cluster.shards, pacers):
            assert pacer.external.count == shard.served
        assert sum(p.external.count for p in pacers) > 0

    def test_stall_signal_ignores_the_feed_end_to_end(self):
        cluster = CacheCluster.homogeneous(
            "Region-Cache", 2, 10 * SCALE.zone_size, 5 * SCALE.zone_size,
            scale=SCALE, cache_overrides=(("eviction_policy", "fifo"),),
        )
        for shard in cluster.shards:
            shard.stack.enable_adaptive_pacing(
                AdaptivePacingConfig(stall_slo_ns=1000, signal="stall",
                                     interval_steps=1_000_000)
            )
        Server(cluster, [_tenant("w", 50_000.0, 400)], ServerConfig()).run()
        for shard in cluster.shards:
            assert shard.stack.reclaim_engine()[1].pacer.external.count == 0


# --------------------------------------------------------------------------
# The hint-sweep experiment end to end
# --------------------------------------------------------------------------

class TestHintSweep:
    @pytest.mark.slow
    def test_drop_counters_reconcile_with_trace_spans(self):
        from repro.bench.experiments import run_hint_sweep

        rows = run_hint_sweep(
            num_shards=2,
            requests_per_tenant=3_000,
            schemes=("Block-Cache", "File-Cache"),
            modes=("off", "full"),
        )
        assert len(rows) == 4
        by_cell = {(r["scheme"], r["hints"]): r for r in rows}
        for row in rows:
            assert row["gc_hint_dropped_units"] == row["gc_hint_drop_spans"]
        for scheme, layer in (("Block-Cache", "ftl"), ("File-Cache", "f2fs")):
            off, full = by_cell[(scheme, "off")], by_cell[(scheme, "full")]
            assert off["gc_layer"] == full["gc_layer"] == layer
            assert off["gc_hint_dropped_units"] == 0
            assert full["gc_hint_dropped_units"] > 0
            # Dropping instead of copying must reduce GC copy traffic.
            assert full["gc_copied_bytes"] < off["gc_copied_bytes"]

    @pytest.mark.slow
    def test_smoke_grid_is_deterministic(self):
        from repro.bench.experiments import run_hint_smoke

        first = run_hint_smoke()
        second = run_hint_smoke()
        assert first == second
        assert {r["hints"] for r in first} == {"off", "ztl", "full"}
