"""Unit tests for the page-mapped FTL: mapping, GC, and WA accounting."""

import pytest

from repro.errors import DeviceFullError
from repro.flash.ftl import FtlConfig, PageMappedFtl
from repro.flash.nand import NandGeometry
from repro.units import KIB


def make_ftl(op_ratio=0.25, blocks=32, pages=8, low=2, high=4) -> PageMappedFtl:
    geometry = NandGeometry(page_size=4 * KIB, pages_per_block=pages, num_blocks=blocks)
    return PageMappedFtl(geometry, FtlConfig(op_ratio, low, high))


class TestFtlBasics:
    def test_logical_capacity_below_physical(self):
        ftl = make_ftl(op_ratio=0.25)
        assert ftl.logical_pages < ftl.geometry.total_pages
        assert ftl.logical_capacity_bytes == ftl.logical_pages * 4 * KIB

    def test_spare_floor_enforced(self):
        """Even with op_ratio 0 the FTL keeps GC headroom."""
        ftl = make_ftl(op_ratio=0.0)
        spare = ftl.geometry.total_pages - ftl.logical_pages
        assert spare >= (ftl.config.gc_high_watermark + 1) * 8

    def test_write_maps_page(self):
        ftl = make_ftl()
        ftl.write_pages([3])
        assert ftl.physical_of(3) is not None

    def test_rewrite_moves_mapping(self):
        ftl = make_ftl()
        ftl.write_pages([3])
        first = ftl.physical_of(3)
        ftl.write_pages([3])
        assert ftl.physical_of(3) != first

    def test_out_of_range_lpn_rejected(self):
        ftl = make_ftl()
        with pytest.raises(DeviceFullError):
            ftl.write_pages([ftl.logical_pages])

    def test_discard_unmaps(self):
        ftl = make_ftl()
        ftl.write_pages([5])
        ftl.discard_pages([5])
        assert ftl.physical_of(5) is None

    def test_discard_unmapped_is_noop(self):
        ftl = make_ftl()
        ftl.discard_pages([5])  # must not raise
        assert ftl.physical_of(5) is None


class TestFtlGc:
    def fill(self, ftl: PageMappedFtl) -> None:
        ftl.write_pages(list(range(ftl.logical_pages)))

    def test_sequential_fill_no_wa(self):
        ftl = make_ftl()
        self.fill(ftl)
        assert ftl.total_moved_pages == 0
        assert ftl.write_amplification == pytest.approx(1.0)

    def test_overwrites_trigger_gc(self):
        ftl = make_ftl()
        self.fill(ftl)
        # Overwrite everything twice: GC must run and the device survives.
        for _ in range(2):
            self.fill(ftl)
        assert ftl.total_erased_blocks > 0
        assert ftl.free_block_count >= 1

    def test_sequential_overwrite_low_wa(self):
        """Whole-space sequential overwrite invalidates full blocks: WA ~ 1."""
        ftl = make_ftl()
        for _ in range(4):
            self.fill(ftl)
        assert ftl.write_amplification < 1.2

    def test_random_overwrite_wa_above_one(self):
        import random

        rng = random.Random(11)
        ftl = make_ftl(op_ratio=0.25)
        self.fill(ftl)
        for _ in range(ftl.logical_pages * 4):
            ftl.write_pages([rng.randrange(ftl.logical_pages)])
        assert ftl.write_amplification > 1.2

    def test_more_op_means_less_wa(self):
        """The paper's core premise: higher OP lowers device WA."""
        import random

        results = {}
        for op in (0.10, 0.40):
            rng = random.Random(13)
            ftl = make_ftl(op_ratio=op, blocks=64)
            self.fill(ftl)
            for _ in range(ftl.logical_pages * 4):
                ftl.write_pages([rng.randrange(ftl.logical_pages)])
            results[op] = ftl.write_amplification
        assert results[0.40] < results[0.10]

    def test_discard_reduces_gc_load(self):
        """TRIMmed pages are not relocated, so WA drops."""
        import random

        def run(discard: bool) -> float:
            rng = random.Random(17)
            ftl = make_ftl(op_ratio=0.15, blocks=64)
            self.fill(ftl)
            for _ in range(ftl.logical_pages * 3):
                lpn = rng.randrange(ftl.logical_pages)
                if discard:
                    ftl.discard_pages([lpn])
                ftl.write_pages([lpn])
            return ftl.write_amplification

        assert run(discard=True) <= run(discard=False)

    def test_mapping_survives_gc(self):
        """After heavy churn every logical page still has a unique mapping."""
        import random

        rng = random.Random(19)
        ftl = make_ftl()
        self.fill(ftl)
        for _ in range(ftl.logical_pages * 3):
            ftl.write_pages([rng.randrange(ftl.logical_pages)])
        locations = [ftl.physical_of(lpn) for lpn in range(ftl.logical_pages)]
        assert all(loc is not None for loc in locations)
        assert len(set(locations)) == len(locations)


class TestFtlConfigValidation:
    def test_bad_op_ratio(self):
        with pytest.raises(ValueError):
            FtlConfig(op_ratio=1.0)
        with pytest.raises(ValueError):
            FtlConfig(op_ratio=-0.1)

    def test_bad_watermarks(self):
        with pytest.raises(ValueError):
            FtlConfig(gc_low_watermark=0)
        with pytest.raises(ValueError):
            FtlConfig(gc_low_watermark=5, gc_high_watermark=3)
