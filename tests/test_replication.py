"""Tests for fleet replication & failover (repro.serve.replication).

Covers config/journal validation, the health state machine's declared
transitions, R=1 equivalence with the legacy serving loop (the golden-
safety contract), hinted-handoff replay after a scripted power cut,
span/byte reconciliation for replication traffic, and the failover
smoke's determinism.  The full-sweep acceptance criteria run in the
slow tier.
"""

import pytest

from repro.bench.experiments import run_failover_smoke, run_failover_sweep
from repro.bench.schemes import SchemeScale
from repro.errors import ConfigError
from repro.serve import (
    HEALTH_DOWN,
    HEALTH_RESYNCING,
    HEALTH_SUSPECT,
    HEALTH_UP,
    CacheCluster,
    FailoverPlan,
    HintJournal,
    ReplicationConfig,
    RoutingConfig,
    Server,
    ServerConfig,
    ShardKill,
    TenantConfig,
)
from repro.units import KIB, MSEC
from repro.workloads import CacheBenchConfig
from repro.workloads.cachebench import KIND_DELETE, KIND_SET

SMALL = SchemeScale(
    zone_size=256 * KIB,
    region_size=16 * KIB,
    pages_per_block=16,
    ram_bytes=32 * KIB,
)


def _cluster(replicas=2, shards=2, scheme="Region-Cache", **repl_kwargs):
    cache = None if scheme == "Zone-Cache" else 6 * SMALL.zone_size
    return CacheCluster.homogeneous(
        scheme,
        shards,
        8 * SMALL.zone_size,
        cache,
        scale=SMALL,
        cache_overrides=(("eviction_policy", "fifo"),),
        replication=ReplicationConfig(replicas=replicas, **repl_kwargs),
    )


def _tenants(num_ops=400, rate=50_000.0, seed=5):
    return [
        TenantConfig(
            "web",
            rate_ops_per_sec=rate,
            workload=CacheBenchConfig(
                num_ops=num_ops, num_keys=500, set_on_miss=True, seed=seed
            ),
            seed=21,
        ),
        TenantConfig(
            "batch",
            rate_ops_per_sec=rate / 2,
            arrival="burst",
            workload=CacheBenchConfig(
                num_ops=num_ops,
                num_keys=300,
                get_ratio=0.3,
                set_ratio=0.6,
                delete_ratio=0.1,
                seed=seed + 1,
            ),
            seed=22,
        ),
    ]


class TestValidation:
    def test_replication_config(self):
        with pytest.raises(ConfigError):
            ReplicationConfig(replicas=0)
        with pytest.raises(ConfigError):
            ReplicationConfig(hint_limit=0)
        with pytest.raises(ConfigError):
            ReplicationConfig(probe_interval_ms=0.0)
        with pytest.raises(ConfigError):
            ReplicationConfig(suspect_after_failures=0)
        with pytest.raises(ConfigError):
            ReplicationConfig(suspect_after_failures=3, down_after_failures=2)
        assert ReplicationConfig(probe_interval_ms=0.5).probe_interval_ns == (
            MSEC // 2
        )

    def test_shard_kill_and_plan(self):
        with pytest.raises(ConfigError):
            ShardKill(at_ns=-1, shard=0, outage_ns=1)
        with pytest.raises(ConfigError):
            ShardKill(at_ns=0, shard=-1, outage_ns=1)
        with pytest.raises(ConfigError):
            ShardKill(at_ns=0, shard=0, outage_ns=0)
        plan = FailoverPlan([ShardKill(5, 0, 2), ShardKill(3, 1, 2)])
        assert isinstance(plan.kills, tuple)
        assert plan.first_kill_ns() == 3
        assert FailoverPlan().first_kill_ns() is None

    def test_replicas_capped_by_fleet(self):
        with pytest.raises(ConfigError):
            _cluster(replicas=3, shards=2)

    def test_replication_rejects_gc_aware_routing(self):
        with pytest.raises(ConfigError):
            CacheCluster.homogeneous(
                "Region-Cache",
                2,
                8 * SMALL.zone_size,
                6 * SMALL.zone_size,
                scale=SMALL,
                routing=RoutingConfig(policy="gc_aware"),
                replication=ReplicationConfig(replicas=2),
            )

    def test_kill_shard_index_validated(self):
        cluster = _cluster(replicas=2, shards=2)
        with pytest.raises(ConfigError):
            Server(
                cluster,
                _tenants(),
                ServerConfig(48),
                failover=FailoverPlan((ShardKill(0, 9, 1),)),
            )


class TestHintJournal:
    def test_bounded_fifo_drops_oldest(self):
        journal = HintJournal(limit=2)
        assert journal.append(KIND_SET, b"a", b"1")
        assert journal.append(KIND_SET, b"b", b"22")
        assert not journal.append(KIND_SET, b"c", b"333")
        assert len(journal) == 2
        assert journal.appended == 3
        assert journal.dropped == 1
        assert journal.bytes == 6
        entries = journal.drain()
        assert [e[1] for e in entries] == [b"b", b"c"]
        assert len(journal) == 0

    def test_repair_hint_never_shadows_write_hint(self):
        journal = HintJournal(limit=8)
        journal.append(KIND_SET, b"k", b"new")
        assert not journal.append_repair(KIND_SET, b"k", b"stale")
        assert journal.append_repair(KIND_SET, b"other", b"v")
        kinds = {key: value for _, key, value in journal.drain()}
        assert kinds[b"k"] == b"new"
        # Drain clears the written-key memory too.
        assert journal.append_repair(KIND_SET, b"k", b"later")

    def test_delete_hints_carry_no_bytes(self):
        journal = HintJournal(limit=4)
        journal.append(KIND_DELETE, b"k", None)
        assert journal.bytes == 0
        assert journal.drain() == [(KIND_DELETE, b"k", None)]

    def test_limit_validated(self):
        with pytest.raises(ConfigError):
            HintJournal(limit=0)


class TestReplicaSet:
    def test_distinct_primary_first(self):
        cluster = _cluster(replicas=2, shards=3)
        for i in range(200):
            key = f"user:{i}".encode()
            members = cluster.replica_set(key)
            assert len(members) == 2
            assert len({m.index for m in members}) == 2
            assert members[0] is cluster.shard_for(key)

    def test_r1_replica_set_is_primary_only(self):
        cluster = _cluster(replicas=1, shards=2)
        for i in range(50):
            key = f"user:{i}".encode()
            assert cluster.replica_set(key) == (cluster.shard_for(key),)


class TestLegacyEquivalence:
    def test_r1_empty_plan_matches_legacy_loop(self):
        """The replicated loop with R=1 and no kills must reproduce the
        legacy loop's report exactly — the golden-safety contract."""
        legacy = Server(
            CacheCluster.homogeneous(
                "Region-Cache",
                2,
                8 * SMALL.zone_size,
                6 * SMALL.zone_size,
                scale=SMALL,
                cache_overrides=(("eviction_policy", "fifo"),),
            ),
            _tenants(),
            ServerConfig(48),
        ).run()
        replicated = Server(
            _cluster(replicas=1, shards=2),
            _tenants(),
            ServerConfig(48),
            failover=FailoverPlan(),
        ).run()
        assert replicated.fleet_row is not None
        assert legacy.fleet_row is None
        assert replicated.tenant_rows == legacy.tenant_rows
        # Replicated shard rows append fleet columns; the shared prefix
        # must match the legacy loop value-for-value.
        for mine, theirs in zip(replicated.shard_rows, legacy.shard_rows):
            for column, value in theirs.items():
                assert mine[column] == value, column
        assert replicated.fleet_row["repl_writes"] == 0
        assert replicated.fleet_row["kills"] == 0
        # Availability is completed over (offered - rate-limit sheds);
        # with no kills the only loss is queue-full shedding.
        offered = sum(r["offered"] for r in replicated.tenant_rows)
        rate_shed = sum(r["shed_rate_limited"] for r in replicated.tenant_rows)
        completed = sum(r["completed"] for r in replicated.tenant_rows)
        assert replicated.fleet_row["availability"] == pytest.approx(
            completed / (offered - rate_shed)
        )


def _kill_run(
    replicas=2, track_writes=False, num_ops=400, rate=50_000.0, depth=48
):
    cluster = _cluster(
        replicas=replicas, shards=2, track_writes=track_writes
    )
    kill_at = 3 * MSEC
    outage = 3 * MSEC
    server = Server(
        cluster,
        _tenants(num_ops=num_ops, rate=rate),
        ServerConfig(depth),
        failover=FailoverPlan((ShardKill(kill_at, 0, outage),)),
    )
    return cluster, server, server.run()


class TestFailoverLifecycle:
    def test_health_machine_walks_declared_states(self):
        cluster, _, report = _kill_run()
        killed = cluster.shards[0]
        states = [state for _, state in killed.health_log]
        # Declared transitions in order: failures mark it SUSPECT then
        # DOWN, recovery enters RESYNCING, hint drain returns it to UP.
        assert states == [
            HEALTH_SUSPECT,
            HEALTH_DOWN,
            HEALTH_RESYNCING,
            HEALTH_UP,
        ]
        assert killed.alive and killed.health == HEALTH_UP
        assert report.fleet_row["kills"] == 1
        assert report.fleet_row["recovery_ms"] > 3.0  # at least the outage

    def test_hinted_handoff_replays_missed_writes(self):
        cluster, _, report = _kill_run()
        killed = cluster.shards[0]
        fleet = report.fleet_row
        assert fleet["hints_buffered"] > 0
        assert killed.handoff_served > 0
        assert fleet["handoff_writes"] == killed.handoff_served
        assert len(killed.hint_journal) == 0  # drained at recovery
        assert killed.hints_outstanding == 0
        assert fleet["repl_writes"] > 0
        assert fleet["fallback_reads"] > 0

    def test_r1_has_no_replication_machinery(self):
        cluster, _, report = _kill_run(replicas=1)
        fleet = report.fleet_row
        assert fleet["repl_writes"] == 0
        assert fleet["handoff_writes"] == 0
        assert fleet["fallback_reads"] == 0
        assert fleet["failed"] > 0  # outage requests had nowhere to go
        # The shard still recovers (crash_recover is PR 2 machinery).
        assert cluster.shards[0].alive
        assert cluster.shards[0].health == HEALTH_UP

    def test_r2_beats_r1_availability(self):
        # Below the saturation knee (where availability is all about the
        # outage, not queue pressure) replication must win outright.
        _, _, r1 = _kill_run(replicas=1, rate=8_000.0)
        _, _, r2 = _kill_run(replicas=2, rate=8_000.0)
        assert (
            r2.fleet_row["availability"] > r1.fleet_row["availability"]
        )
        assert r2.fleet_row["failed"] < r1.fleet_row["failed"]

    def test_deterministic_fleet_report(self):
        _, _, a = _kill_run()
        _, _, b = _kill_run()
        assert a.fleet_row == b.fleet_row
        assert a.tenant_rows == b.tenant_rows
        assert a.shard_rows == b.shard_rows

    def test_shard_rows_gain_fleet_columns_only_when_replicated(self):
        cluster, _, report = _kill_run()
        for row in report.shard_rows:
            assert "health" in row and "repl_served" in row
        legacy = Server(
            CacheCluster.homogeneous(
                "Region-Cache",
                2,
                8 * SMALL.zone_size,
                6 * SMALL.zone_size,
                scale=SMALL,
                cache_overrides=(("eviction_policy", "fifo"),),
            ),
            _tenants(),
            ServerConfig(48),
        ).run()
        for row in legacy.shard_rows:
            assert "health" not in row and "repl_served" not in row


class TestWriteLedgerOracle:
    def test_no_torn_or_stale_reads_after_replay(self):
        """Every key readable after the storm must hold a value some
        acknowledged write produced (or be absent) — hint replay may
        lose unacknowledged tails but never resurrects torn/stale data.
        """
        cluster, server, report = _kill_run(track_writes=True, num_ops=600)
        assert report.fleet_row["hint_drops"] == 0
        ledger = server.write_ledger
        assert ledger  # the oracle actually recorded writes
        checked = 0
        for key, history in ledger.items():
            versions = {value for _, value in history}
            for shard in cluster.shards:
                observed = shard.stack.cache.get(key)
                assert observed is None or observed in versions, key
                checked += 1
        assert checked > 0

    def test_primary_converges_to_last_acknowledged_write(self):
        """With no hint drops, a key homed on the dead shard whose last
        acknowledged write landed while it was declared DOWN must read
        back on the primary as that write after replay — or not at all
        (ordinary cache eviction), never as an *older* value.

        Writes acknowledged before the kill are exempt: async
        replication acks without waiting for replicas, so a crash can
        legitimately roll the primary back to its last sealed state for
        those (PR 2 semantics) — that is the durability gap R-way
        replication narrows but does not close.

        Runs below the saturation knee with effectively unbounded
        queues: convergence is only promised when no replica write was
        shed to a *full* queue (detection-window drops to the dead
        member still happen — they lose replica copies of keys homed
        elsewhere, which this oracle does not cover).
        """
        cluster, server, report = _kill_run(
            track_writes=True, num_ops=600, rate=8_000.0, depth=100_000
        )
        assert report.fleet_row["hint_drops"] == 0
        killed = cluster.shards[0]
        down_ns = next(
            t for t, state in killed.health_log if state == HEALTH_DOWN
        )
        checked = stale = 0
        for key, history in server.write_ledger.items():
            if cluster.shard_for(key) is not killed:
                continue
            last_ns, last_value = history[-1]
            # Strictly after the DOWN declaration: the write whose failed
            # fan-out *triggered* the transition shares its timestamp but
            # was dropped (the member was still SUSPECT when it fanned
            # out), not hinted.
            if last_ns <= down_ns:
                continue
            checked += 1
            observed = killed.stack.cache.get(key)
            if observed is not None and observed != last_value:
                stale += 1
        assert checked > 0
        assert stale == 0


class TestSpanReconciliation:
    def test_replicate_and_handoff_spans_match_reported_bytes(self):
        cluster = _cluster(replicas=2, shards=2)
        for shard in cluster.shards:
            shard.stack.cache.store.tracer.enable()
        server = Server(
            cluster,
            _tenants(),
            ServerConfig(48),
            failover=FailoverPlan((ShardKill(3 * MSEC, 0, 3 * MSEC),)),
        )
        report = server.run()
        fleet = report.fleet_row
        repl_spans = []
        handoff_spans = []
        for shard in cluster.shards:
            tracer = shard.stack.cache.store.tracer
            repl_spans.extend(tracer.find("serve", "replicate"))
            handoff_spans.extend(tracer.find("serve", "handoff"))
        assert fleet["repl_writes"] == len(repl_spans) > 0
        assert fleet["repl_bytes"] == sum(r.length for r in repl_spans) > 0
        assert fleet["handoff_writes"] == len(handoff_spans) > 0
        assert fleet["handoff_bytes"] == sum(r.length for r in handoff_spans)

    def test_fault_and_health_events_emitted(self):
        cluster = _cluster(replicas=2, shards=2)
        killed_tracer = cluster.shards[0].stack.cache.store.tracer
        killed_tracer.enable()
        Server(
            cluster,
            _tenants(),
            ServerConfig(48),
            failover=FailoverPlan((ShardKill(3 * MSEC, 0, 3 * MSEC),)),
        ).run()
        assert killed_tracer.find("serve.fault", "power_cut")
        health_ops = [r.op for r in killed_tracer.find("serve.health")]
        assert health_ops == [
            HEALTH_SUSPECT,
            HEALTH_DOWN,
            HEALTH_RESYNCING,
            HEALTH_UP,
        ]
        assert killed_tracer.find("serve", "recover")


class TestFailoverSmokeGolden:
    def test_smoke_deterministic_and_shaped(self):
        rows_a = run_failover_smoke()
        rows_b = run_failover_smoke()
        assert rows_a == rows_b
        assert len(rows_a) == 2
        r1, r2 = rows_a
        assert (r1["replicas"], r2["replicas"]) == (1, 2)
        assert r2["fleet_availability"] > r1["fleet_availability"]
        assert r2["fleet_handoff_writes"] > 0
        assert r1["fleet_repl_bytes"] == 0 and r2["fleet_repl_bytes"] > 0
        for row in rows_a:
            assert row["fleet_kills"] == 1


@pytest.mark.slow
class TestFailoverSweepAcceptance:
    def test_r2_survives_shard_loss_r1_does_not(self):
        """The PR's acceptance criteria: with R=2, killing 1 of 8 shards
        mid-diurnal keeps availability >= 99% and the hit ratio within
        5% of steady state by sweep end for Region-Cache and Z-Cache;
        R=1 demonstrably fails the availability bar."""
        rows = run_failover_sweep()
        by_cell = {(r["scheme"], r["replicas"]): r for r in rows}
        for scheme in ("Region-Cache", "Z-Cache"):
            r2 = by_cell[(scheme, 2)]
            assert r2["fleet_availability"] >= 0.99, scheme
            steady = r2["fleet_hit_steady"]
            recovered = r2["fleet_hit_recovered"]
            assert abs(recovered - steady) / steady <= 0.05, scheme
            r1 = by_cell[(scheme, 1)]
            assert r1["fleet_availability"] < 0.99, scheme
            assert r2["fleet_repl_bytes"] > 0
            assert r2["fleet_handoff_writes"] > 0
