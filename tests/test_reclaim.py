"""The unified reclamation framework (repro.reclaim).

Three layers of assurance:

* unit tests for the validated config helpers, the victim policies and
  the pacer's watermark/token decisions;
* engine mechanics against a scripted source (budget accounting, skip /
  retry semantics, span emission);
* golden determinism: the four refactored call sites (FTL, ZTL, F2FS
  cleaner, cache region manager) must reproduce the exact pre-refactor
  numbers, captured on the seed tree before the engine existed.
"""

from __future__ import annotations

import random

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.bench.reporting import canonicalize_gc_columns
from repro.errors import ConfigError
from repro.f2fs import CleanerConfig, F2fs, F2fsConfig, VictimPolicy as F2fsPolicy
from repro.flash import NandGeometry, NullBlkDevice, ZnsConfig, ZnsSsd
from repro.flash.ftl import FtlConfig, PageMappedFtl
from repro.reclaim import (
    GreedyPolicy,
    PacerConfig,
    ReclaimEngine,
    ReclaimPacer,
    ReclaimSource,
    UnitOutcome,
    VictimView,
    ensure_at_least,
    ensure_between,
    ensure_choice,
    ensure_fraction,
    make_victim_policy,
)
from repro.sim import SimClock
from repro.sim.io import IoTracer
from repro.units import KIB, MIB
from repro.ztl.gc import GcConfig
from repro.ztl.layer import RegionTranslationLayer, ZtlConfig

PAGE = 4 * KIB


# --------------------------------------------------------------------------
# Config helpers
# --------------------------------------------------------------------------

class TestConfigHelpers:
    def test_values_pass_through(self):
        assert ensure_at_least("n", 3, 1) == 3
        assert ensure_between("n", 2, 0, 4) == 2
        assert ensure_fraction("f", 0.5) == 0.5
        assert ensure_choice("c", "a", ("a", "b")) == "a"

    def test_violations_raise_config_error(self):
        with pytest.raises(ConfigError):
            ensure_at_least("n", 0, 1)
        with pytest.raises(ConfigError):
            ensure_between("n", 5, 0, 4)
        with pytest.raises(ConfigError):
            ensure_fraction("f", 1.5)
        with pytest.raises(ConfigError):
            ensure_choice("c", "z", ("a", "b"))

    def test_config_error_is_a_value_error(self):
        # Callers that predate the helper catch ValueError; both work.
        with pytest.raises(ValueError):
            ensure_at_least("n", -1, 0)

    def test_layer_configs_validate(self):
        with pytest.raises(ConfigError):
            GcConfig(min_empty_zones=0)
        with pytest.raises(ConfigError):
            GcConfig(min_empty_zones=2, emergency_empty_zones=3)
        with pytest.raises(ConfigError):
            CleanerConfig(low_watermark=0)
        with pytest.raises(ConfigError):
            FtlConfig(op_ratio=1.0)
        with pytest.raises(ConfigError):
            FtlConfig(gc_low_watermark=4, gc_high_watermark=2)
        with pytest.raises(ConfigError):
            PacerConfig(background=3, target=1)


# --------------------------------------------------------------------------
# Victim policies
# --------------------------------------------------------------------------

def _view(vid, valid, total=8, age=0):
    return VictimView(vid, valid, valid / total, age)


class TestVictimPolicies:
    def test_greedy_prefers_fewest_valid_first_wins(self):
        views = [_view(1, 5), _view(2, 3), _view(3, 3)]
        assert GreedyPolicy().select(views) == 2

    def test_cost_benefit_never_takes_fully_valid(self):
        views = [_view(1, 8, total=8, age=100), _view(2, 7, total=8, age=1)]
        assert make_victim_policy("cost_benefit").select(views) == 2

    def test_cost_benefit_prefers_older_at_equal_valid(self):
        views = [_view(1, 4, age=1), _view(2, 4, age=10)]
        assert make_victim_policy("cost_benefit").select(views) == 2

    def test_age_threshold_prefers_aged_containers(self):
        policy = make_victim_policy("age_threshold", age_threshold=8)
        views = [_view(1, 1, age=2), _view(2, 7, age=9)]
        assert policy.select(views) == 2
        # Within the aged tier, fewest-valid still wins.
        views = [_view(1, 7, age=9), _view(2, 2, age=12)]
        assert policy.select(views) == 2

    def test_random_is_seed_deterministic(self):
        views = [_view(i, i % 4) for i in range(10)]
        a = [make_victim_policy("random", seed=5).select(views) for _ in range(3)]
        b = [make_victim_policy("random", seed=5).select(views) for _ in range(3)]
        assert a == b

    def test_empty_candidates_select_none(self):
        assert GreedyPolicy().select([]) is None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            make_victim_policy("fancy")


# --------------------------------------------------------------------------
# Pacer
# --------------------------------------------------------------------------

class TestPacer:
    def test_watermark_decisions(self):
        pacer = ReclaimPacer(PacerConfig(background=4, target=8, emergency=1))
        assert pacer.should_trigger(3) and not pacer.should_trigger(4)
        assert pacer.reached_target(8) and not pacer.reached_target(7)
        assert pacer.level(0) == "emergency"
        assert pacer.level(2) == "background"
        assert pacer.level(9) == "idle"

    def test_urgent_level_and_unbounded_budget(self):
        pacer = ReclaimPacer(
            PacerConfig(background=4, target=4, urgent=2, pace_units=3)
        )
        assert pacer.level(2) == "urgent"
        assert pacer.step_budget(3) == 3
        assert pacer.step_budget(2) is None  # urgent: ignore the pace

    def test_accepts_threshold_with_emergency_override(self):
        pacer = ReclaimPacer(
            PacerConfig(background=4, target=4, emergency=1,
                        victim_valid_threshold=0.25)
        )
        assert pacer.accepts(0.2, free_units=3)
        assert not pacer.accepts(0.8, free_units=3)
        assert pacer.accepts(0.8, free_units=1)  # emergency takes anything

    def test_copy_token_bucket(self):
        pacer = ReclaimPacer(
            PacerConfig(copy_tokens_per_step=100, copy_bucket_cap=150)
        )
        assert pacer.copy_tokens == 150
        pacer.spend(120)
        assert not pacer.try_reserve(100)
        assert pacer.throttled_steps == 1
        pacer.refill()
        assert pacer.copy_tokens == 130
        assert pacer.try_reserve(100)
        pacer.refill()
        assert pacer.copy_tokens == 150  # capped

    def test_no_bucket_means_always_admitted(self):
        pacer = ReclaimPacer(PacerConfig())
        assert pacer.try_reserve(1 << 40)
        assert pacer.throttled_steps == 0


# --------------------------------------------------------------------------
# Engine mechanics (scripted source)
# --------------------------------------------------------------------------

class _ScriptedSource(ReclaimSource):
    name = "fake"
    unit_bytes = 10

    def __init__(self, victims, free=0):
        self.victims = {vid: list(units) for vid, units in victims.items()}
        self.free = free
        self.outcomes = {}
        self.released = []
        self.flushes = 0

    def free_units(self):
        return self.free

    def candidate_views(self):
        return [
            VictimView(vid, len(units), len(units) / 8, 0)
            for vid, units in sorted(self.victims.items())
        ]

    def pending_units(self, victim_id):
        return list(reversed(self.victims[victim_id]))

    def migrate_unit(self, victim_id, unit):
        return self.outcomes.pop((victim_id, unit), UnitOutcome.MIGRATED)

    def release_victim(self, victim_id):
        self.released.append(victim_id)
        del self.victims[victim_id]

    def flush_step(self):
        self.flushes += 1


def _engine(source, tracer=None, **pacer_kwargs):
    return ReclaimEngine(
        source,
        GreedyPolicy(),
        ReclaimPacer(PacerConfig(**pacer_kwargs)),
        tracer=tracer if tracer is not None else IoTracer(),
    )


class TestEngineMechanics:
    def test_collect_reclaims_whole_victims(self):
        source = _ScriptedSource({1: [10, 11, 12], 2: [20]}, free=0)
        engine = _engine(source, background=1, target=1)
        assert engine.collect(max_victims=2) == 2
        assert source.released == [2, 1]  # greedy: fewest valid first
        assert engine.stats.victims_reclaimed == 2
        assert engine.stats.units_migrated == 4
        assert engine.stats.copied_bytes == 4 * source.unit_bytes

    def test_skipped_units_cost_no_budget(self):
        source = _ScriptedSource({1: [10, 11, 12]}, free=0)
        source.outcomes[(1, 10)] = UnitOutcome.SKIPPED
        engine = _engine(source, background=1, target=1, pace_units=2)
        engine.background_step()
        # One paced step: the stale unit rides free, both live units move.
        assert engine.stats.units_migrated == 2
        assert engine.stats.victims_reclaimed == 1

    def test_retry_requeues_and_ends_step(self):
        source = _ScriptedSource({1: [10, 11]}, free=0)
        source.outcomes[(1, 10)] = UnitOutcome.RETRY
        engine = _engine(source, background=1, target=1)
        engine.background_step()
        assert engine.stats.retries == 1
        assert engine.victim == 1  # still in progress
        engine.background_step()  # outcome consumed: now migrates
        assert engine.stats.units_migrated == 2
        assert engine.victim is None

    def test_pacer_rejects_defer_collection_entirely(self):
        source = _ScriptedSource({1: [10] * 8}, free=2)
        engine = _engine(
            source, background=4, target=4, emergency=1,
            victim_valid_threshold=0.5,
        )
        assert engine.pick_victim() is None  # 8/8 valid, free above emergency
        source.free = 1
        assert engine.pick_victim() == 1  # emergency takes it

    def test_spans_cover_migrate_and_reset(self):
        tracer = IoTracer(SimClock()).enable()
        source = _ScriptedSource({1: [10, 11]}, free=0)
        engine = _engine(source, tracer=tracer, background=1, target=1)
        engine.collect()
        migrates = tracer.find(layer="reclaim.fake", op="migrate")
        resets = tracer.find(layer="reclaim.fake", op="reset")
        assert migrates and len(resets) == 1
        assert resets[0].zone == 1

    def test_abandon_victim_forgets_pending_work(self):
        source = _ScriptedSource({1: [10, 11]}, free=0)
        engine = _engine(source, background=1, target=1, pace_units=1)
        engine.background_step()
        assert engine.victim == 1
        engine.abandon_victim()
        assert engine.victim is None

    def test_drain_to_target_stops_at_high_watermark(self):
        source = _ScriptedSource({1: [10], 2: [20], 3: [30]}, free=0)
        engine = _engine(source, background=2, target=2)

        original = source.release_victim

        def release(victim_id):
            original(victim_id)
            source.free += 1

        source.release_victim = release
        assert engine.drain_to_target() == 2
        assert source.free == 2
        assert len(source.victims) == 1


# --------------------------------------------------------------------------
# Golden determinism: the four call sites, pre-refactor numbers
# --------------------------------------------------------------------------

class TestGoldenDeterminism:
    """Hardcoded outputs captured on the seed tree before the engine
    refactor; any drift in default-config behavior fails here."""

    def test_ftl_golden(self):
        geometry = NandGeometry(page_size=PAGE, pages_per_block=8, num_blocks=32)
        ftl = PageMappedFtl(geometry, FtlConfig(0.25, 2, 4))
        rng = random.Random(11)
        ftl.write_pages(list(range(ftl.logical_pages)))
        for _ in range(ftl.logical_pages * 4):
            ftl.write_pages([rng.randrange(ftl.logical_pages)])
        assert ftl.total_host_pages == 960
        assert ftl.total_moved_pages == 1032
        assert ftl.total_erased_blocks == 221
        assert ftl.free_block_count == 4
        assert ftl.write_amplification == 2.075
        assert [
            ftl.physical_of(lpn) for lpn in range(0, ftl.logical_pages, 17)
        ] == [(18, 4), (6, 1), (5, 0), (2, 3), (19, 1), (7, 2),
              (22, 2), (13, 2), (23, 3), (26, 4), (30, 3), (20, 1)]

    def test_ztl_golden(self):
        clock = SimClock()
        geometry = NandGeometry(page_size=PAGE, pages_per_block=64, num_blocks=64)
        device = ZnsSsd(clock, ZnsConfig(geometry=geometry, zone_size=1 * MIB))
        layer = RegionTranslationLayer(
            device,
            ZtlConfig(
                region_size=64 * KIB, host_open_zones=2,
                gc=GcConfig(min_empty_zones=3, victim_valid_threshold=0.25,
                            pace_regions=4),
            ),
        )
        rng = random.Random(7)
        live = int(layer.total_slots * 0.8)
        payload = bytes(64 * KIB)
        for region_id in range(live):
            layer.write_region(region_id, payload)
        for _ in range(live * 4):
            layer.write_region(rng.randrange(live), payload)
        assert clock.now == 8470413120
        assert layer.stats.host_region_writes == 1020
        assert layer.stats.migrated_region_writes == 3010
        assert layer.stats.gc_zone_resets == 238
        assert layer.gc.zones_collected == 238
        assert layer.gc.regions_migrated == 3010
        assert layer.stats.app_write_amplification == 3.950980392156863
        assert device.stats.media_write_bytes == 264110080
        assert [
            (rid, layer.map.lookup(rid).zone_index, layer.map.lookup(rid).slot)
            for rid in range(0, live, 23)
        ] == [(0, 13, 1), (23, 13, 7), (46, 10, 3), (69, 14, 7), (92, 4, 3),
              (115, 4, 6), (138, 1, 13), (161, 7, 2), (184, 3, 13)]

    @staticmethod
    def _f2fs_run(policy):
        clock = SimClock()
        geometry = NandGeometry(page_size=PAGE, pages_per_block=16, num_blocks=256)
        zns = ZnsSsd(
            clock, ZnsConfig(geometry=geometry, zone_size=8 * geometry.block_size)
        )
        meta = NullBlkDevice(clock, capacity_bytes=8 * MIB)
        fs = F2fs(
            clock, zns, meta,
            F2fsConfig(checkpoint_interval_blocks=1 << 30),
            CleanerConfig(low_watermark=3, pace_blocks=8, policy=policy),
        )
        fs.mkfs()
        handle = fs.create("data")
        rng = random.Random(5)
        for step in range(6000):
            handle.pwrite(rng.randrange(600) * PAGE, bytes([step % 251 + 1]) * PAGE)
        return clock, zns, fs

    def test_f2fs_cost_benefit_golden(self):
        clock, zns, fs = self._f2fs_run(F2fsPolicy.COST_BENEFIT)
        assert clock.now == 9220097856
        assert fs.cleaner.sections_cleaned == 67
        assert fs.cleaner.blocks_migrated == 228
        assert fs.stats.data_write_bytes == 50085888
        assert fs.stats.write_amplification == 2.054333333333333
        assert zns.stats.media_write_bytes == 50085888

    def test_f2fs_greedy_golden(self):
        clock, _zns, fs = self._f2fs_run(F2fsPolicy.GREEDY)
        assert clock.now == 9016436000
        assert fs.cleaner.sections_cleaned == 65
        assert fs.cleaner.blocks_migrated == 0
        assert fs.stats.write_amplification == 2.0156666666666667

    @pytest.mark.slow
    def test_fig2_rows_golden(self):
        from repro.bench.experiments import run_fig2_overall

        rows = run_fig2_overall(zones=12, cache_zones=9, file_zones=18,
                                num_ops=4000)
        keep = ("scheme", "throughput_mops_per_min", "hit_ratio", "waf_app",
                "waf_device", "get_p99_us", "set_p99_us", "cache_mib")
        assert [{k: row[k] for k in keep} for row in rows] == [
            {"scheme": "Region-Cache",
             "throughput_mops_per_min": 0.4709803702141237,
             "hit_ratio": 0.8438775510204082,
             "waf_app": 8.805555555555555, "waf_device": 1.0,
             "get_p99_us": 11150.904, "set_p99_us": 1732.821,
             "cache_mib": 36.0},
            {"scheme": "Zone-Cache",
             "throughput_mops_per_min": 0.926339694528708,
             "hit_ratio": 0.8811224489795918,
             "waf_app": 1.0, "waf_device": 1.0,
             "get_p99_us": 75.453, "set_p99_us": 1.36, "cache_mib": 48.0},
            {"scheme": "File-Cache",
             "throughput_mops_per_min": 1.6990825723549836,
             "hit_ratio": 0.8438775510204082,
             "waf_app": 1.078125, "waf_device": 1.0,
             "get_p99_us": 127.453, "set_p99_us": 2663.977,
             "cache_mib": 36.0},
            {"scheme": "Block-Cache",
             "throughput_mops_per_min": 1.6520145648141498,
             "hit_ratio": 0.8438775510204082,
             "waf_app": 1.0, "waf_device": 1.640625,
             "get_p99_us": 83.453, "set_p99_us": 1796.701,
             "cache_mib": 36.0},
        ]

    def test_cache_windowed_eviction_golden(self):
        from repro.cache.region import RegionMeta
        from repro.cache.region_manager import RegionManager

        manager = RegionManager(16, "fifo", reclaim_window=4, seed=3)
        for _ in range(16):
            region_id, evicted = manager.allocate()
            assert not evicted
            manager.seal(RegionMeta(region_id, keys={b"k%d" % region_id}))
        order = []
        for step in range(64):
            region_id, evicted = manager.allocate()
            order.append((region_id, sorted(evicted)))
            manager.seal(RegionMeta(region_id, keys={b"s%d" % step}))
        expected = [
            (1, "k1"), (4, "k4"), (3, "k3"), (0, "k0"), (5, "k5"), (8, "k8"),
            (6, "k6"), (2, "k2"), (10, "k10"), (7, "k7"), (11, "k11"),
            (12, "k12"), (14, "k14"), (15, "k15"), (9, "k9"), (1, "s0"),
            (3, "s2"), (5, "s4"), (13, "k13"), (4, "s1"), (8, "s5"),
            (0, "s3"), (2, "s7"), (6, "s6"), (7, "s9"), (12, "s11"),
            (14, "s12"), (10, "s8"), (11, "s10"), (9, "s14"), (3, "s16"),
            (15, "s13"), (13, "s18"), (1, "s15"), (8, "s20"), (0, "s21"),
            (4, "s19"), (6, "s23"), (5, "s17"), (7, "s24"), (2, "s22"),
            (10, "s27"), (9, "s29"), (3, "s30"), (14, "s26"), (12, "s25"),
            (1, "s33"), (11, "s28"), (0, "s35"), (15, "s31"), (6, "s37"),
            (4, "s36"), (8, "s34"), (2, "s40"), (7, "s39"), (10, "s41"),
            (13, "s32"), (9, "s42"), (3, "s43"), (5, "s38"), (1, "s46"),
            (14, "s44"), (12, "s45"), (15, "s49"),
        ]
        assert order == [(rid, [key.encode()]) for rid, key in expected]
        assert manager.regions_evicted == 64
        assert manager.items_evicted == 64


# --------------------------------------------------------------------------
# Tracer attribution: every migrated byte under a reclaim span
# --------------------------------------------------------------------------

class TestReclaimTracing:
    def test_ztl_migrated_bytes_all_attributed(self):
        clock = SimClock()
        geometry = NandGeometry(page_size=PAGE, pages_per_block=16, num_blocks=32)
        device = ZnsSsd(
            clock,
            ZnsConfig(geometry=geometry, zone_size=4 * geometry.block_size),
            tracer=IoTracer().enable(),
        )
        layer = RegionTranslationLayer(
            device,
            ZtlConfig(
                region_size=geometry.block_size, host_open_zones=2,
                gc=GcConfig(min_empty_zones=2, victim_valid_threshold=0.5,
                            pace_regions=2),
            ),
        )
        payload = bytes(geometry.block_size)
        rng = random.Random(3)
        for _ in range(200):
            layer.write_region(rng.randrange(12), payload)
        engine = layer.gc.engine
        assert engine.stats.victims_reclaimed > 0
        tracer = device.tracer
        by_id = {r.record_id: r for r in tracer.records}

        def attributed(record):
            cursor = record
            while cursor is not None:
                if cursor.layer.startswith("reclaim."):
                    return True
                cursor = by_id.get(cursor.parent_id)
            return False

        traced = sum(
            r.length
            for r in tracer.records
            if r.op in ("write", "append") and attributed(r)
        )
        assert traced == engine.stats.copied_bytes > 0
        resets = tracer.find(layer="reclaim.ztl", op="reset")
        assert len(resets) == engine.stats.victims_reclaimed


# --------------------------------------------------------------------------
# Property: no live region lost or duplicated across interleavings
# --------------------------------------------------------------------------

def _make_layer():
    clock = SimClock()
    geometry = NandGeometry(page_size=PAGE, pages_per_block=16, num_blocks=32)
    device = ZnsSsd(
        clock, ZnsConfig(geometry=geometry, zone_size=4 * geometry.block_size)
    )
    return RegionTranslationLayer(
        device,
        ZtlConfig(
            region_size=geometry.block_size, host_open_zones=2,
            gc=GcConfig(min_empty_zones=2, victim_valid_threshold=0.5,
                        pace_regions=2),
        ),
    )


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 14), st.sampled_from(["write", "trim", "collect"])
        ),
        max_size=150,
    )
)
def test_ztl_reclaim_preserves_live_regions(ops):
    """Arbitrary write/trim/collect interleavings: every live region is
    still mapped exactly once afterwards — GC neither loses nor
    duplicates live data, whichever victims the engine picked."""
    layer = _make_layer()
    payload = bytes(layer.config.region_size)
    live = set()
    for region_id, kind in ops:
        if kind == "write":
            layer.write_region(region_id, payload)
            live.add(region_id)
        elif kind == "trim":
            layer.invalidate_region(region_id)
            live.discard(region_id)
        else:
            layer.gc.collect(max_zones=1)
    assert {rid for rid in range(15) if layer.has_region(rid)} == live
    placements = [
        (layer.map.lookup(rid).zone_index, layer.map.lookup(rid).slot)
        for rid in sorted(live)
    ]
    assert len(set(placements)) == len(placements)


# --------------------------------------------------------------------------
# Reporting: gc_* column canonicalization
# --------------------------------------------------------------------------

class TestGcColumnFamily:
    def test_aliases_fold_into_gc_family(self):
        rows = [
            {"scheme": "a", "zones_collected": 3, "regions_migrated": 5},
            {"scheme": "b", "gc_victims": 7, "sections_cleaned": 9},
        ]
        out = canonicalize_gc_columns(rows)
        assert out[0] == {"scheme": "a", "gc_victims": 3, "gc_migrated_units": 5}
        # The explicit canonical value wins over the legacy alias.
        assert out[1] == {"scheme": "b", "gc_victims": 7}

    def test_rows_without_aliases_pass_through(self):
        row = {"scheme": "c", "hit_ratio": 0.5}
        assert canonicalize_gc_columns([row])[0] is row

    def test_conflicting_aliases_resolve_deterministically(self):
        # Regression: two aliases folding to the same canonical key used
        # to be last-writer-wins on row insertion order, so the same
        # logical row could render differently depending on which layer
        # emitted its counters first.  The alias table's declaration
        # order now breaks the tie.
        out = canonicalize_gc_columns([
            {"scheme": "a", "zones_collected": 3, "sections_cleaned": 9},
            {"scheme": "b", "sections_cleaned": 9, "zones_collected": 3},
        ])
        assert out[0]["gc_victims"] == out[1]["gc_victims"] == 3


# --------------------------------------------------------------------------
# The gc-sweep experiment end to end
# --------------------------------------------------------------------------

class TestGcAblation:
    @pytest.mark.slow
    def test_sweep_rows_with_full_attribution(self):
        from repro.bench.experiments import run_gc_ablation
        from repro.bench.schemes import SCHEME_NAMES

        rows = run_gc_ablation(
            policies=("greedy",), watermark_scales=(1,), paces=(8,),
            requests_per_tenant=6_000, trace=True,
        )
        assert {r["scheme"] for r in rows} == set(SCHEME_NAMES)
        for row in rows:
            # Every migrated byte carries a reclaim span in its chain.
            assert row["reclaim_traced_bytes"] == row["gc_copied_bytes"]
            assert row["reclaim_spans"] > 0
            if row["scheme"] == "Zone-Cache":
                # The paper's premise: nothing to reclaim below the cache.
                assert row["gc_victims"] == 0
                assert row["gc_copied_bytes"] == 0
                assert row["gc_layer"] == "none"
            else:
                assert row["gc_victims"] > 0
                assert row["gc_stall_us_p99"] >= 0.0
