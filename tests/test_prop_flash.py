"""Property-based tests (hypothesis) for the flash substrate.

Invariants checked:

* FTL: any sequence of writes/discards preserves a bijective mapping for
  live pages, never maps two logical pages to one physical slot, and
  media writes >= host writes.
* Block SSD: read-back equals last write, for arbitrary page sequences.
* ZNS: write pointers never exceed zone bounds, and the set of states is
  always legal; host/media write equality (WA == 1) holds under any legal
  op sequence.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.flash import BlockSsd, BlockSsdConfig, FtlConfig, NandGeometry, ZnsConfig, ZnsSsd
from repro.flash.ftl import PageMappedFtl
from repro.flash.zone import ZoneState
from repro.sim import SimClock
from repro.units import KIB

PAGE = 4 * KIB

SMALL_GEO = NandGeometry(page_size=PAGE, pages_per_block=8, num_blocks=32)


def make_ftl() -> PageMappedFtl:
    return PageMappedFtl(SMALL_GEO, FtlConfig(0.25, 2, 4))


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 100)),
        max_size=300,
    )
)
def test_ftl_mapping_stays_consistent(ops):
    ftl = make_ftl()
    live = set()
    for is_write, lpn in ops:
        lpn %= ftl.logical_pages
        if is_write:
            ftl.write_pages([lpn])
            live.add(lpn)
        else:
            ftl.discard_pages([lpn])
            live.discard(lpn)
    locations = {}
    for lpn in range(ftl.logical_pages):
        loc = ftl.physical_of(lpn)
        if lpn in live:
            assert loc is not None, f"live page {lpn} lost its mapping"
            assert loc not in locations.values(), "two pages share a slot"
            locations[lpn] = loc
    assert ftl.total_host_pages + ftl.total_moved_pages >= ftl.total_host_pages


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    writes=st.lists(st.tuples(st.integers(0, 60), st.integers(0, 255)), max_size=120)
)
def test_blockssd_readback_matches_last_write(writes):
    ssd = BlockSsd(
        SimClock(),
        BlockSsdConfig(geometry=SMALL_GEO, ftl=FtlConfig(0.25, 2, 4)),
    )
    pages = ssd.capacity_bytes // PAGE
    expected = {}
    for lpn, tag in writes:
        lpn %= pages
        payload = bytes([tag]) * PAGE
        ssd.write(lpn * PAGE, payload)
        expected[lpn] = payload
    for lpn, payload in expected.items():
        assert ssd.read(lpn * PAGE, PAGE).data == payload


def _legal_states():
    return {
        ZoneState.EMPTY,
        ZoneState.IMPLICIT_OPEN,
        ZoneState.EXPLICIT_OPEN,
        ZoneState.CLOSED,
        ZoneState.FULL,
    }


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["write", "append", "reset", "finish", "close"]),
                  st.integers(0, 7)),
        max_size=150,
    )
)
def test_zns_invariants_under_random_ops(ops):
    zns = ZnsSsd(
        SimClock(),
        ZnsConfig(
            geometry=SMALL_GEO,
            zone_size=4 * SMALL_GEO.block_size,
            max_open_zones=3,
            max_active_zones=5,
        ),
    )
    payload = b"\x5a" * PAGE
    for op, zone_idx in ops:
        zone_idx %= zns.num_zones
        zone = zns.zones[zone_idx]
        try:
            if op == "write":
                zns.write(zone.write_pointer, payload)
            elif op == "append":
                zns.append(zone_idx, payload)
            elif op == "reset":
                zns.reset_zone(zone_idx)
            elif op == "finish":
                zns.finish_zone(zone_idx)
            elif op == "close":
                zns.close_zone(zone_idx)
        except Exception:
            # Illegal transitions are expected; invariants must hold anyway.
            pass
        for z in zns.zones:
            assert z.start <= z.write_pointer <= z.end
            assert z.state in _legal_states()
        assert zns.open_zone_count <= zns.config.max_open_zones
        assert zns.active_zone_count <= zns.config.max_active_zones
    assert zns.stats.media_write_bytes == zns.stats.host_write_bytes
