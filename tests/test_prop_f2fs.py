"""Property-based tests for the F2FS-like filesystem and SSTable codec."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.f2fs import CleanerConfig, F2fs, F2fsConfig, fsck
from repro.flash import NandGeometry, NullBlkDevice, ZnsConfig, ZnsSsd
from repro.lsm.block import DataBlock, DataBlockBuilder
from repro.sim import SimClock
from repro.units import KIB, MIB

PAGE = 4 * KIB


def make_fs() -> F2fs:
    clock = SimClock()
    geometry = NandGeometry(page_size=PAGE, pages_per_block=8, num_blocks=96)
    zns = ZnsSsd(clock, ZnsConfig(geometry=geometry, zone_size=4 * geometry.block_size))
    meta = NullBlkDevice(clock, capacity_bytes=4 * MIB)
    fs = F2fs(
        clock, zns, meta,
        F2fsConfig(provision_ratio=0.25, checkpoint_interval_blocks=1 << 30),
        CleanerConfig(low_watermark=3, pace_blocks=8),
    )
    fs.mkfs()
    return fs


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 60), st.integers(0, 255), st.integers(1, 3)),
        max_size=120,
    )
)
def test_f2fs_agrees_with_model_and_stays_consistent(ops):
    """Random block writes: the FS must agree with a model dict and pass
    fsck afterwards, regardless of cleaning activity."""
    fs = make_fs()
    handle = fs.create("f")
    model = {}
    for block_index, tag, extent in ops:
        payload = bytes([tag]) * (PAGE * extent)
        handle.pwrite(block_index * PAGE, payload)
        for i in range(extent):
            model[block_index + i] = bytes([tag]) * PAGE
    for block_index, expected in model.items():
        assert handle.pread(block_index * PAGE, PAGE) == expected
    report = fsck(fs)
    assert report.clean, report.errors[:3]


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    entries=st.dictionaries(
        st.binary(min_size=1, max_size=24),
        st.binary(max_size=64),
        min_size=1,
        max_size=60,
    )
)
def test_datablock_roundtrip(entries):
    builder = DataBlockBuilder(target_size=1 << 20)
    ordered = sorted(entries.items())
    for key, value in ordered:
        builder.add(key, value)
    block = DataBlock(builder.finish())
    assert len(block) == len(ordered)
    for key, value in ordered:
        assert block.get(key) == value
    assert block.get(b"\xff" * 30) is None
    assert block.entries() == ordered


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    keys=st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=200,
                  unique=True)
)
def test_bloom_no_false_negatives_property(keys):
    from repro.lsm.bloom import BloomFilter

    bloom = BloomFilter.for_keys(keys)
    assert all(bloom.may_contain(k) for k in keys)
    restored = BloomFilter.from_bytes(bloom.to_bytes())
    assert all(restored.may_contain(k) for k in keys)
