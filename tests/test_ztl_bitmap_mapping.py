"""Unit tests for the middle layer's bitmap and region map."""

import pytest

from repro.errors import RegionNotMappedError
from repro.ztl import RegionLocation, RegionMap, SlotBitmap


class TestSlotBitmap:
    def test_starts_clear(self):
        bitmap = SlotBitmap(8)
        assert bitmap.valid_count == 0
        assert bitmap.valid_fraction == 0.0
        assert not bitmap.is_set(0)

    def test_set_and_clear(self):
        bitmap = SlotBitmap(8)
        bitmap.set(3)
        assert bitmap.is_set(3)
        assert bitmap.valid_count == 1
        bitmap.clear(3)
        assert not bitmap.is_set(3)
        assert bitmap.valid_count == 0

    def test_idempotent_set(self):
        bitmap = SlotBitmap(8)
        bitmap.set(1)
        bitmap.set(1)
        assert bitmap.valid_count == 1

    def test_idempotent_clear(self):
        bitmap = SlotBitmap(8)
        bitmap.clear(1)
        assert bitmap.valid_count == 0

    def test_valid_slots_iteration(self):
        bitmap = SlotBitmap(16)
        for slot in (0, 5, 15):
            bitmap.set(slot)
        assert list(bitmap.valid_slots()) == [0, 5, 15]

    def test_clear_all(self):
        bitmap = SlotBitmap(8)
        for slot in range(8):
            bitmap.set(slot)
        bitmap.clear_all()
        assert bitmap.valid_count == 0
        assert list(bitmap.valid_slots()) == []

    def test_valid_fraction(self):
        bitmap = SlotBitmap(4)
        bitmap.set(0)
        assert bitmap.valid_fraction == pytest.approx(0.25)

    def test_bounds_checked(self):
        bitmap = SlotBitmap(4)
        with pytest.raises(IndexError):
            bitmap.set(4)
        with pytest.raises(IndexError):
            bitmap.is_set(-1)

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            SlotBitmap(0)


class TestRegionMap:
    def test_bind_and_lookup(self):
        rmap = RegionMap()
        loc = RegionLocation(2, 3)
        rmap.bind(7, loc)
        assert rmap.lookup(7) == loc
        assert rmap.region_at(loc) == 7
        assert 7 in rmap
        assert len(rmap) == 1

    def test_lookup_missing_raises(self):
        with pytest.raises(RegionNotMappedError):
            RegionMap().lookup(1)

    def test_get_missing_returns_none(self):
        assert RegionMap().get(1) is None

    def test_rebind_region_moves(self):
        rmap = RegionMap()
        rmap.bind(7, RegionLocation(0, 0))
        rmap.bind(7, RegionLocation(1, 1))
        assert rmap.lookup(7) == RegionLocation(1, 1)
        assert rmap.region_at(RegionLocation(0, 0)) is None
        assert len(rmap) == 1

    def test_rebind_location_evicts_old_region(self):
        rmap = RegionMap()
        loc = RegionLocation(0, 0)
        rmap.bind(7, loc)
        rmap.bind(8, loc)
        assert rmap.get(7) is None
        assert rmap.region_at(loc) == 8

    def test_unbind(self):
        rmap = RegionMap()
        loc = RegionLocation(0, 0)
        rmap.bind(7, loc)
        assert rmap.unbind(7) == loc
        assert rmap.unbind(7) is None
        assert len(rmap) == 0

    def test_byte_offset(self):
        loc = RegionLocation(zone_index=3, slot=2)
        assert loc.byte_offset(zone_size=1024, region_size=128) == 3 * 1024 + 256
