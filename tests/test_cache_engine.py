"""Integration tests for the hybrid cache engine over each backend."""

import pytest

from repro.bench.schemes import (
    SchemeScale,
    build_block_cache,
    build_file_cache,
    build_region_cache,
    build_zone_cache,
)
from repro.cache import CacheConfig, HybridCache, ProbabilisticAdmission
from repro.cache.backends import BlockRegionStore
from repro.errors import CacheConfigError, ObjectTooLargeError
from repro.flash import BlockSsd, BlockSsdConfig, FtlConfig, NandGeometry
from repro.sim import SimClock
from repro.units import KIB

TEST_SCALE = SchemeScale(
    zone_size=256 * KIB,
    region_size=16 * KIB,
    pages_per_block=16,  # 64 KiB erase blocks for the small test devices
    ram_bytes=32 * KIB,
)


def all_schemes():
    """(name, builder) for each scheme at test scale."""
    media = 16 * TEST_SCALE.zone_size  # 4 MiB
    cache = 12 * TEST_SCALE.zone_size  # 3 MiB
    return [
        ("Block-Cache", lambda: build_block_cache(SimClock(), TEST_SCALE, media, cache)),
        ("Zone-Cache", lambda: build_zone_cache(SimClock(), TEST_SCALE, media)),
        ("File-Cache", lambda: build_file_cache(SimClock(), TEST_SCALE, 2 * media, cache)),
        ("Region-Cache", lambda: build_region_cache(SimClock(), TEST_SCALE, media, cache)),
    ]


def value_for(i: int, size: int = 600) -> bytes:
    return (f"v{i:06d}".encode() * (size // 7 + 1))[:size]


@pytest.fixture(params=[name for name, _ in all_schemes()])
def stack(request):
    for name, builder in all_schemes():
        if name == request.param:
            return builder()
    raise AssertionError


class TestEngineBasics:
    def test_set_get_roundtrip(self, stack):
        cache = stack.cache
        assert cache.set(b"key1", b"hello")
        assert cache.get(b"key1") == b"hello"

    def test_get_missing(self, stack):
        assert stack.cache.get(b"nope") is None

    def test_overwrite(self, stack):
        cache = stack.cache
        cache.set(b"k", b"v1")
        cache.set(b"k", b"v2")
        assert cache.get(b"k") == b"v2"

    def test_delete(self, stack):
        cache = stack.cache
        cache.set(b"k", b"v")
        assert cache.delete(b"k")
        assert cache.get(b"k") is None
        assert not cache.delete(b"k")

    def test_read_spans_flush_boundary(self, stack):
        """Values must be readable before and after the region flush."""
        cache = stack.cache
        keys = [f"key{i}".encode() for i in range(64)]
        for i, key in enumerate(keys):
            cache.set(key, value_for(i))
        cache.flush()
        for i, key in enumerate(keys):
            assert cache.get(key) == value_for(i), key

    def test_object_too_large_rejected(self, stack):
        with pytest.raises(ObjectTooLargeError):
            stack.cache.set(b"big", b"x" * (stack.cache.config.region_size + 1))

    def test_contains(self, stack):
        stack.cache.set(b"k", b"v")
        assert stack.cache.contains(b"k")
        assert not stack.cache.contains(b"missing")

    def test_clock_advances_on_ops(self, stack):
        before = stack.clock.now
        stack.cache.set(b"k", b"v")
        stack.cache.get(b"k")
        assert stack.clock.now > before


class TestEngineEviction:
    def fill_past_capacity(self, stack, factor=1.6, size=900):
        cache = stack.cache
        total = int(cache.config.flash_bytes * factor // size)
        for i in range(total):
            cache.set(f"fill{i:08d}".encode(), value_for(i, size))
        return total

    def test_whole_region_eviction(self, stack):
        total = self.fill_past_capacity(stack)
        cache = stack.cache
        assert cache.regions.regions_evicted > 0
        # Oldest keys are gone (FIFO regions), newest survive.
        assert cache.get(f"fill{total - 1:08d}".encode()) is not None
        cache.ram.clear()
        assert cache.get(b"fill00000000") is None

    def test_item_count_bounded_by_capacity(self, stack):
        self.fill_past_capacity(stack, factor=2.0)
        cache = stack.cache
        max_items = cache.config.flash_bytes // 900
        assert cache.item_count() <= max_items + cache.config.region_size // 900 + 1

    def test_data_integrity_under_churn(self, stack):
        """Every key the index still knows must read back correctly."""
        cache = stack.cache
        total = self.fill_past_capacity(stack, factor=1.8)
        cache.ram.clear()
        survivors = 0
        for i in range(total):
            key = f"fill{i:08d}".encode()
            value = cache.get(key)
            if value is not None:
                assert value == value_for(i, 900)
                survivors += 1
        assert survivors > 0

    def test_no_stale_reads(self, stack):
        self.fill_past_capacity(stack, factor=1.8)
        assert stack.cache.stats.stale_index_reads == 0

    def test_fill_durations_recorded(self, stack):
        self.fill_past_capacity(stack)
        assert len(stack.cache.stats.region_fill_durations_ns) > 0


class TestEngineStats:
    def test_hit_ratio_tracks(self, stack):
        cache = stack.cache
        cache.set(b"k", b"v")
        cache.get(b"k")
        cache.get(b"absent")
        assert cache.stats.lookups.total == 2
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_reset_stats(self, stack):
        cache = stack.cache
        cache.set(b"k", b"v")
        cache.get(b"k")
        cache.reset_stats()
        assert cache.stats.operations == 0
        # Data survives a stats reset.
        assert cache.get(b"k") == b"v"

    def test_waf_breakdown_present(self, stack):
        waf = stack.cache.waf()
        assert waf.app >= 1.0
        assert waf.device >= 1.0
        assert waf.total == pytest.approx(waf.app * waf.device)


class TestEngineAdmission:
    def make_block_cache(self, admission):
        clock = SimClock()
        geometry = NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=64)
        device = BlockSsd(clock, BlockSsdConfig(geometry=geometry, ftl=FtlConfig(0.25)))
        store = BlockRegionStore(device, 16 * KIB, 8)
        config = CacheConfig(region_size=16 * KIB, num_regions=8, ram_bytes=8 * KIB)
        return HybridCache(clock, store, config, admission=admission)

    def test_rejected_sets_stay_in_ram_only(self):
        cache = self.make_block_cache(ProbabilisticAdmission(0.0))
        assert not cache.set(b"k", b"v")
        assert cache.get(b"k") == b"v"  # served by RAM
        cache.ram.clear()
        assert cache.get(b"k") is None  # never reached flash

    def test_rejection_drops_stale_flash_copy(self):
        cache = self.make_block_cache(ProbabilisticAdmission(0.0))
        cache.admission = ProbabilisticAdmission(1.0)
        cache.set(b"k", b"old")
        cache.admission = ProbabilisticAdmission(0.0)
        cache.set(b"k", b"new")
        cache.ram.clear()
        # The stale flash copy must not resurface.
        assert cache.get(b"k") is None

    def test_config_backend_mismatch_rejected(self):
        clock = SimClock()
        geometry = NandGeometry(page_size=4 * KIB, pages_per_block=16, num_blocks=64)
        device = BlockSsd(clock, BlockSsdConfig(geometry=geometry))
        store = BlockRegionStore(device, 16 * KIB, 8)
        with pytest.raises(CacheConfigError):
            HybridCache(clock, store, CacheConfig(region_size=32 * KIB, num_regions=4))
        with pytest.raises(CacheConfigError):
            HybridCache(clock, store, CacheConfig(region_size=16 * KIB, num_regions=9))


class TestZoneCacheSpecifics:
    def test_zero_wa_forever(self):
        stack = build_zone_cache(SimClock(), TEST_SCALE, 16 * TEST_SCALE.zone_size)
        cache = stack.cache
        for i in range(3 * cache.config.flash_bytes // 900):
            cache.set(f"fill{i:08d}".encode(), value_for(i, 900))
        waf = cache.waf()
        assert waf.app == 1.0
        assert waf.device == 1.0

    def test_eviction_resets_zone(self):
        stack = build_zone_cache(SimClock(), TEST_SCALE, 4 * TEST_SCALE.zone_size)
        cache = stack.cache
        store = stack.substrate["store"]
        for i in range(int(5.5 * TEST_SCALE.zone_size // 900)):
            cache.set(f"fill{i:08d}".encode(), value_for(i, 900))
        assert store.zone_resets > 0
