"""Fast-path engine equivalence tests.

The fast serving path (pre-generated arrival/op arrays + run-list
scheduler + inlined QoS accounting) must be *observably identical* to
the legacy one-event-per-arrival heap loop:

* the run-list scheduler dequeues in exactly the ``(time, seq)`` order a
  reference ``heapq`` produces, across arbitrary push/pop interleavings
  (hypothesis property);
* fast and legacy loops produce equal tenant and shard rows on the
  serving smoke configuration;
* enabling tracing (which routes to the legacy loop and records spans)
  changes no measured value — the no-op tracer truly is a no-op;
* ``build_scheme_cached`` clones behave exactly like fresh builds and
  are independent of each other;
* best-score gc_aware routing picks the least-stalled / most-headroom
  successor and resolves exact ties to the nearest ring successor.
"""

from __future__ import annotations

import heapq

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.bench.schemes import (
    SchemeScale,
    build_scheme,
    build_scheme_cached,
    clear_stack_cache,
)
from repro.serve import CacheCluster, RoutingConfig, Server, ServerConfig, ShardSpec
from repro.serve.cluster import PRESSURE_RANK
from repro.sim.clock import SimClock
from repro.sim.sched import EventScheduler
from repro.units import KIB
from repro.workloads.cachebench import CacheBenchConfig, CacheBenchDriver


# --- scheduler order property ---------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(
    events=st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 1), st.integers(0, 7)),
        max_size=60,
    ),
    plan=st.lists(st.booleans(), max_size=140),
)
def test_scheduler_matches_heapq_order(events, plan):
    """Any interleaving of pushes and pops dequeues in heapq order."""
    sched = EventScheduler()
    heap = []
    seq = 0
    pending = list(events)
    # plan: True → pop one event (if any), False → push the next event
    # (if any); then drain.  Equal times exercise the seq tie-break.
    for do_pop in plan:
        if do_pop:
            if heap:
                assert sched.pop() == heapq.heappop(heap)
        elif pending:
            time_ns, kind, index = pending.pop(0)
            sched.push(time_ns, kind, index)
            seq += 1
            heapq.heappush(heap, (time_ns, seq, kind, index))
    while heap:
        assert sched.pop() == heapq.heappop(heap)
    assert len(sched) == 0
    assert not sched


def test_scheduler_equal_times_dequeue_in_push_order():
    sched = EventScheduler()
    for index in range(8):
        sched.push(100, 0, index)
    assert [sched.pop()[3] for _ in range(8)] == list(range(8))


# --- fast loop vs legacy loop vs traced loop ------------------------------------


def _smoke_server(
    fast_path: bool, trace: bool = False, schemes: tuple = None
) -> Server:
    """The run_serving_smoke cluster/tenants with a selectable loop."""
    import repro.bench.experiments as experiments

    scale = experiments._serving_scale()
    media = 12 * scale.zone_size
    if schemes is None:
        specs = [
            ShardSpec(
                "Region-Cache",
                media_bytes=media,
                cache_bytes=9 * scale.zone_size,
                cache_overrides=(
                    ("eviction_policy", "fifo"), ("reclaim_window", 32)
                ),
            ),
            ShardSpec(
                "Zone-Cache",
                media_bytes=media,
                cache_overrides=(("eviction_policy", "fifo"),),
            ),
        ]
    else:
        specs = [
            ShardSpec(
                scheme,
                media_bytes=media,
                cache_bytes=9 * scale.zone_size,
                cache_overrides=(("eviction_policy", "fifo"),),
            )
            for scheme in schemes
        ]
    cluster = CacheCluster(specs, scale=scale)
    if trace:
        for shard in cluster.shards:
            shard.stack.cache.store.tracer.enable()
    tenants = experiments._serving_tenants(
        total_rate=120_000.0, requests_per_tenant=1_000, num_keys=1_500, seed=7
    )
    return Server(
        cluster, tenants, ServerConfig(max_queue_depth=24, fast_path=fast_path)
    )


def _report_rows(server: Server):
    report = server.run()
    return (
        report.tenant_rows,
        report.shard_rows,
        report.offered,
        report.completed,
        report.shed,
    )


def test_fast_loop_rows_equal_legacy_loop_rows():
    assert _report_rows(_smoke_server(True)) == _report_rows(_smoke_server(False))


def test_fast_loop_rows_equal_legacy_loop_rows_z_cache():
    """The TinyLFU-classified Z-Cache flush path runs identically under
    the fast and legacy serving loops (same sketch state, same groups)."""
    schemes = ("Z-Cache", "Z-Cache")
    fast = _report_rows(_smoke_server(True, schemes=schemes))
    legacy = _report_rows(_smoke_server(False, schemes=schemes))
    assert fast == legacy


def test_traced_run_rows_equal_untraced_rows():
    """Tracing must observe, never perturb: same rows with spans on.

    A tracer with capture enabled also forces the legacy loop, so this
    doubles as traced-legacy vs untraced-fast equivalence.
    """
    traced = _smoke_server(True, trace=True)
    # Tracing routes to the legacy loop even with fast_path requested.
    tracer = traced.cluster.shards[0].stack.cache.store.tracer
    assert tracer.enabled
    traced_rows = _report_rows(traced)
    assert len(tracer.records) > 0  # spans were actually recorded
    assert traced_rows == _report_rows(_smoke_server(True))


# --- cached stack construction --------------------------------------------------


class TestBuildSchemeCached:
    SCALE = SchemeScale(
        zone_size=256 * KIB,
        region_size=16 * KIB,
        pages_per_block=16,
        ram_bytes=32 * KIB,
    )

    def _run_workload(self, stack):
        driver = CacheBenchDriver(
            CacheBenchConfig(num_ops=400, warmup_ops=100, num_keys=120, seed=11)
        )
        return driver.run(stack.cache)

    def test_cached_stack_rows_equal_fresh_build(self):
        clear_stack_cache()
        fresh = build_scheme(
            "Region-Cache",
            SimClock(),
            self.SCALE,
            12 * self.SCALE.zone_size,
            9 * self.SCALE.zone_size,
            eviction_policy="fifo",
        )
        cached = build_scheme_cached(
            "Region-Cache",
            self.SCALE,
            12 * self.SCALE.zone_size,
            9 * self.SCALE.zone_size,
            eviction_policy="fifo",
        )
        assert self._run_workload(fresh) == self._run_workload(cached)

    def test_cached_clones_are_independent(self):
        clear_stack_cache()
        args = ("Zone-Cache", self.SCALE, 8 * self.SCALE.zone_size)
        first = build_scheme_cached(*args)
        second = build_scheme_cached(*args)
        assert first.cache is not second.cache
        assert first.clock is not second.clock
        result = self._run_workload(first)
        assert result.operations > 0
        # The sibling clone saw none of that traffic.
        assert second.cache.stats.operations == 0
        assert second.clock.now != first.clock.now
        # And a third clone reproduces the first run exactly.
        assert self._run_workload(build_scheme_cached(*args)) == result

    def test_unhashable_overrides_fall_back_to_fresh_build(self):
        clear_stack_cache()
        from repro.ztl.gc import GcConfig

        stack = build_scheme_cached(
            "Region-Cache",
            self.SCALE,
            12 * self.SCALE.zone_size,
            9 * self.SCALE.zone_size,
            gc=GcConfig(min_empty_zones=2),
        )
        assert stack.cache.stats.operations == 0


# --- best-score gc_aware routing ------------------------------------------------


def _zone_cluster(num_shards=4, routing=None):
    scale = SchemeScale(
        zone_size=256 * KIB,
        region_size=16 * KIB,
        pages_per_block=16,
        ram_bytes=32 * KIB,
    )
    return CacheCluster.homogeneous(
        "Zone-Cache",
        num_shards,
        8 * scale.zone_size,
        None,
        scale=scale,
        cache_overrides=(("eviction_policy", "fifo"),),
        routing=routing,
    )


def _fake_pressure(shard, level, stall_us, free_units):
    shard.pressure_rank = lambda: PRESSURE_RANK[level]
    shard.pressure = lambda: {
        "layer": "fake",
        "level": level,
        "free_units": free_units,
        "gc_stall_us_p99": stall_us,
    }


class TestBestScoreRouting:
    def test_picks_best_score_not_first_lower_rank(self):
        cluster = _zone_cluster(
            routing=RoutingConfig(policy="gc_aware", max_reroute_distance=3)
        )
        key = b"score-key"
        home = cluster.shard_for(key)
        successors = cluster.successors_for(key)
        assert len(successors) == 3
        _fake_pressure(home, "emergency", 500.0, 0)
        # Nearest successor is eligible but heavily stalled; the second
        # is equally ranked with less stall — old first-lower-rank
        # routing would stop at successors[0].
        _fake_pressure(successors[0], "background", 400.0, 5)
        _fake_pressure(successors[1], "background", 10.0, 5)
        _fake_pressure(successors[2], "urgent", 0.0, 50)
        shard, rerouted_from = cluster.route_from_home(key, home)
        assert rerouted_from is home
        assert shard is successors[1]

    def test_lower_rank_beats_better_stall_score(self):
        cluster = _zone_cluster(
            routing=RoutingConfig(policy="gc_aware", max_reroute_distance=3)
        )
        key = b"rank-first"
        home = cluster.shard_for(key)
        successors = cluster.successors_for(key)
        _fake_pressure(home, "emergency", 500.0, 0)
        # idle rank wins over background rank regardless of the
        # stall/headroom components: rank is the primary score term.
        _fake_pressure(successors[0], "background", 0.0, 1000)
        _fake_pressure(successors[1], "idle", 300.0, 0)
        _fake_pressure(successors[2], "idle", 300.0, 0)
        shard, _ = cluster.route_from_home(key, home)
        assert shard is successors[1]

    def test_exact_ties_resolve_to_nearest_successor(self):
        cluster = _zone_cluster(
            routing=RoutingConfig(policy="gc_aware", max_reroute_distance=3)
        )
        key = b"tie-key"
        home = cluster.shard_for(key)
        successors = cluster.successors_for(key)
        _fake_pressure(home, "urgent", 100.0, 1)
        for successor in successors:
            _fake_pressure(successor, "idle", 25.0, 8)
        shard, rerouted_from = cluster.route_from_home(key, home)
        assert rerouted_from is home
        assert shard is successors[0]

    def test_headroom_breaks_equal_stall(self):
        cluster = _zone_cluster(
            routing=RoutingConfig(
                policy="gc_aware", max_reroute_distance=3, headroom_weight=2.0
            )
        )
        key = b"headroom"
        home = cluster.shard_for(key)
        successors = cluster.successors_for(key)
        _fake_pressure(home, "emergency", 0.0, 0)
        _fake_pressure(successors[0], "idle", 25.0, 2)
        _fake_pressure(successors[1], "idle", 25.0, 40)
        _fake_pressure(successors[2], "idle", 25.0, 2)
        shard, _ = cluster.route_from_home(key, home)
        assert shard is successors[1]

    def test_stays_home_when_everyone_is_as_pressured(self):
        cluster = _zone_cluster(
            routing=RoutingConfig(policy="gc_aware", max_reroute_distance=3)
        )
        key = b"no-escape"
        home = cluster.shard_for(key)
        for shard in cluster.shards:
            _fake_pressure(shard, "emergency", 10.0, 0)
        routed, rerouted_from = cluster.route_from_home(key, home)
        assert routed is home
        assert rerouted_from is None
